#include "core/shard.hpp"

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/telemetry.hpp"

namespace adcc::core {

// ---------------------------------------------------------------------------
// ShardExchange
// ---------------------------------------------------------------------------

void ShardExchange::publish(std::size_t unit, std::string tag, std::size_t shard,
                            std::vector<double> value) {
  const StageTimer timer("shard/halo");
  // Overwrite semantics: a replaying shard republishes (identical) values.
  entries_[Key{unit, std::move(tag), shard}] = std::move(value);
}

std::span<const double> ShardExchange::fetch(std::size_t unit, const std::string& tag,
                                             std::size_t shard) {
  const StageTimer timer("shard/halo");
  const auto it = entries_.find(Key{unit, tag, shard});
  ADCC_CHECK(it != entries_.end(), "exchange fetch of an unpublished value (phase-order bug)");
  fetched_bytes_ += it->second.size() * sizeof(double);
  return it->second;
}

void ShardExchange::trim(std::size_t upto) {
  // Keys order by unit first, so the stale range is a prefix.
  entries_.erase(entries_.begin(), entries_.lower_bound(Key{upto + 1, std::string(), 0}));
}

void ShardExchange::clear() { entries_.clear(); }

// ---------------------------------------------------------------------------
// ShardGroup
// ---------------------------------------------------------------------------

ShardGroup::ShardGroup(std::unique_ptr<ShardPlan> plan, ShardGroupConfig cfg,
                       FallbackFactory fallback)
    : plan_(std::move(plan)), cfg_(cfg), fallback_factory_(std::move(fallback)) {
  ADCC_CHECK(plan_ != nullptr, "shard group needs a plan");
  ADCC_CHECK(cfg_.shards >= 1, "shard count must be >= 1");
  ADCC_CHECK(fallback_factory_ != nullptr, "shard group needs an unsharded fallback");
}

ShardGroup::~ShardGroup() = default;

Workload& ShardGroup::ensure_fallback() const {
  if (!fallback_) fallback_ = fallback_factory_();
  return *fallback_;
}

std::string ShardGroup::name() const { return plan_->name(); }

std::size_t ShardGroup::work_units() const {
  return use_fallback_ ? ensure_fallback().work_units() : plan_->work_units();
}

std::size_t ShardGroup::units_done() const {
  return use_fallback_ ? ensure_fallback().units_done() : done_;
}

std::size_t ShardGroup::phases() const { return plan_->phases(); }

std::size_t ShardGroup::shard_count() const { return use_fallback_ ? 1 : parts_.size(); }

FaultSurface* ShardGroup::fault() {
  return use_fallback_ ? ensure_fallback().fault() : &fault_;
}

void ShardGroup::tune_env(Mode mode, ModeEnvConfig& cfg) const {
  const DurabilityKind kind = durability_kind(mode);
  const bool shardable = cfg_.shards > 1 && (kind == DurabilityKind::kNone ||
                                             kind == DurabilityKind::kCheckpoint);
  if (!shardable) {
    ensure_fallback().tune_env(mode, cfg);
    return;
  }
  plan_->tune_env(mode, cfg, cfg_.shards);
}

void ShardGroup::prepare(ModeEnv& env) {
  const DurabilityKind kind = durability_kind(env.mode);
  // Transaction and algorithm modes keep their single-rank durability engines
  // (their actions interleave with the kernels and do not decompose along the
  // group snapshot protocol): delegate wholesale.
  use_fallback_ = cfg_.shards <= 1 ||
                  (kind != DurabilityKind::kNone && kind != DurabilityKind::kCheckpoint);
  if (use_fallback_) {
    ensure_fallback().prepare(env);
    return;
  }

  env_ = &env;
  kind_ = kind;
  async_ = env.cfg.ckpt_async;
  done_ = 0;
  crashed_done_ = 0;
  scope_ = {};
  pending_epoch_.reset();
  exchange_.clear();
  fault_.disarm();
  fault_.reset_counter();

  const std::size_t n = cfg_.shards;
  progress_.assign(n, 0);
  exec_steps_.assign(n, 0);
  last_saved_epoch_.assign(n, 0);
  saved_version_.assign(n, 0);

  // Tear down the previous run's engines before rebuilding: checkpoint sets
  // reference the shard backends, and a FileBackend removes its slot files on
  // destruction — the old namespace must clear before the new one claims it.
  coordinator_.reset();
  parts_.clear();
  ckpts_.clear();
  shard_envs_.clear();

  if (kind_ == DurabilityKind::kCheckpoint) {
    ADCC_CHECK(env.backend != nullptr, "checkpoint modes need a backend");
    // The main env hosts only the coordinator's marker; force it synchronous
    // (the marker save IS the global commit point) and single-threaded — it
    // is a few dozen bytes.
    checkpoint::ChunkConfig marker_cc;
    marker_cc.chunk_bytes = env.cfg.ckpt_chunk_bytes;
    env.backend->configure_chunks(marker_cc);
    const std::filesystem::path base =
        env.cfg.scratch_dir.empty()
            ? std::filesystem::temp_directory_path() / "adcc_ckpt"
            : env.cfg.scratch_dir;
    for (std::size_t i = 0; i < n; ++i) {
      ModeEnvConfig sc = env.cfg;
      sc.scratch_dir = base / ("shard" + std::to_string(i));
      shard_envs_.push_back(std::make_unique<ModeEnv>(make_env(env.mode, sc)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      ckpts_.push_back(std::make_unique<checkpoint::CheckpointSet>(
          *shard_envs_[i]->backend, [this](const char* p) { fault_.point(p); }));
    }
    coordinator_ = std::make_unique<GroupCoordinator>(*env.backend, &fault_, n);
  }

  for (std::size_t i = 0; i < n; ++i) {
    parts_.push_back(plan_->make_part(i, n, fault_));
    parts_[i]->prepare(kind_ == DurabilityKind::kCheckpoint ? ckpts_[i].get() : nullptr);
  }
}

bool ShardGroup::run_step() {
  if (use_fallback_) return ensure_fallback().run_step();
  if (done_ >= plan_->work_units()) return false;
  const std::size_t u = done_ + 1;
  const std::size_t phases = plan_->phases();
  for (std::size_t ph = 0; ph < phases; ++ph) {
    const std::size_t target = (u - 1) * phases + ph + 1;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      // Phase-steps a shard already holds (a replayed victim, or a survivor
      // of a mid-unit crash) are never recomputed.
      if (progress_[i] >= target) continue;
      parts_[i]->compute(u, ph, exchange_);
      ++exec_steps_[i];
      progress_[i] = target;
    }
  }
  ++done_;
  return true;
}

std::vector<std::size_t> ShardGroup::save_order(std::size_t epoch) const {
  std::vector<std::size_t> order(parts_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (cfg_.stagger && !order.empty()) {
    std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(epoch % order.size()),
                order.end());
  }
  return order;
}

void ShardGroup::commit_pending() {
  const std::size_t e = *pending_epoch_;
  const std::vector<std::size_t> order = save_order(e);
  coordinator_->commit_epoch(e, order, ckpts_);
  pending_epoch_.reset();
  // Nothing can need exchange entries at or before the committed epoch: every
  // shard's durable image is now >= e.
  exchange_.trim(e);
}

void ShardGroup::make_durable() {
  if (use_fallback_) {
    ensure_fallback().make_durable();
    return;
  }
  if (kind_ != DurabilityKind::kCheckpoint) return;
  const std::size_t u = done_;
  // Pipelined commit: epoch u-1's drains (issued last unit) joined and
  // committed first, then epoch u's saves are issued. The marker thus lags
  // the newest save by at most one epoch — exactly what the two-slot buffer
  // can roll back.
  if (pending_epoch_) commit_pending();
  const std::vector<std::size_t> order = save_order(u);
  for (const std::size_t i : order) {
    parts_[i]->on_save(u);
    saved_version_[i] = ckpts_[i]->save();
    last_saved_epoch_[i] = u;
  }
  if (async_) {
    pending_epoch_ = u;
  } else {
    coordinator_->commit_epoch(u, order, ckpts_);
    exchange_.trim(u);
  }
}

void ShardGroup::wait_durable() {
  if (use_fallback_) {
    ensure_fallback().wait_durable();
    return;
  }
  if (kind_ != DurabilityKind::kCheckpoint) return;
  if (pending_epoch_) commit_pending();
}

bool ShardGroup::durability_pending() const {
  if (use_fallback_) return ensure_fallback().durability_pending();
  return pending_epoch_.has_value();
}

void ShardGroup::set_crash_scope(const CrashScope& scope) {
  if (use_fallback_) {
    ensure_fallback().set_crash_scope(scope);
    return;
  }
  scope_ = scope;
  for (std::size_t& v : scope_.victims) v = std::min(v, parts_.size() - 1);
}

void ShardGroup::inject_crash() {
  if (use_fallback_) {
    ensure_fallback().inject_crash();
    return;
  }
  crashed_done_ = done_;
  if (scope_.kind == CrashScope::Kind::kShards && !scope_.victims.empty()) {
    for (const std::size_t v : scope_.victims) {
      if (kind_ == DurabilityKind::kCheckpoint) {
        ckpts_[v]->abort_async();  // The victim's drain dies with it.
        if (shard_envs_[v]->dram) shard_envs_[v]->dram->discard();
      }
      parts_[v]->clobber();
      progress_[v] = 0;  // Unknown until recovery replays.
    }
    // Survivors keep their live state; the exchange log and any pending
    // global epoch survive too — recovery repairs the commit.
    return;
  }
  // Whole-group power failure (process scope, or the coordinator dying
  // mid-commit and taking the group with it).
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (kind_ == DurabilityKind::kCheckpoint) {
      ckpts_[i]->abort_async();
      if (shard_envs_[i]->dram) shard_envs_[i]->dram->discard();
    }
    parts_[i]->clobber();
    progress_[i] = 0;
  }
  if (coordinator_) coordinator_->clobber();
  if (env_ != nullptr && env_->dram) env_->dram->discard();
  exchange_.clear();
  pending_epoch_.reset();
}

std::size_t ShardGroup::replay(std::size_t i, std::size_t from) {
  const std::size_t phases = plan_->phases();
  for (std::size_t u = from + 1; u <= done_; ++u) {
    for (std::size_t ph = 0; ph < phases; ++ph) {
      // Producers the victim would have consumed are fetched from the
      // retained exchange, so survivors never recompute; the victim's own
      // republications are idempotent (deterministic values).
      parts_[i]->compute(u, ph, exchange_);
      ++exec_steps_[i];
    }
  }
  progress_[i] = done_ * phases;
  return done_ - from;
}

void ShardGroup::reform_commit() {
  const std::size_t u = done_;
  const std::vector<std::size_t> order = save_order(u);
  for (const std::size_t i : order) {
    // A shard's epoch-u image is intact if it took that save and the slot
    // version it produced was not rolled back by an aborted/failed drain.
    const bool intact =
        last_saved_epoch_[i] == u && ckpts_[i]->version() == saved_version_[i];
    if (intact) continue;
    parts_[i]->on_save(u);
    saved_version_[i] = ckpts_[i]->save();
    last_saved_epoch_[i] = u;
  }
  coordinator_->commit_epoch(u, order, ckpts_);
  pending_epoch_.reset();
  exchange_.trim(u);
}

WorkloadRecovery ShardGroup::recover() {
  if (use_fallback_) return ensure_fallback().recover();
  WorkloadRecovery rec;
  const std::size_t fetched_before = exchange_.fetched_bytes();
  double repair = 0.0;

  if (scope_.kind == CrashScope::Kind::kShards && !scope_.victims.empty()) {
    // k-of-N: survivors keep computing state; only the victims reload and
    // replay their own deltas. done_ does not move.
    if (kind_ == DurabilityKind::kCheckpoint) {
      const GroupCoordinator::Marker marker = coordinator_->reload();
      rec.torn_chunks += coordinator_->last_restore_torn();
      const auto epoch = static_cast<std::size_t>(marker.epoch);
      for (const std::size_t v : scope_.victims) {
        ckpts_[v]->restore_version(marker.versions[v]);
        rec.candidates_checked += ckpts_[v]->last_restore().chunks_probed;
        rec.torn_chunks += ckpts_[v]->last_restore().torn_chunks;
        rec.salvaged_chunks += ckpts_[v]->last_restore().salvaged_chunks;
        saved_version_[v] = marker.versions[v];
        last_saved_epoch_[v] = epoch;
        parts_[v]->restored(epoch);
        Timer t;
        rec.units_replayed += replay(v, epoch);
        repair += t.elapsed();
      }
      rec.shards_restored = scope_.victims.size();
      if (epoch < done_) {
        // The crash interrupted (or pre-empted) the commit of an epoch newer
        // than the marker: re-form it now, so the double buffer protects the
        // replayed state again before execution resumes.
        Timer t;
        reform_commit();
        repair += t.elapsed();
      }
    } else {
      for (const std::size_t v : scope_.victims) {
        parts_[v]->restored(0);
        Timer t;
        rec.units_replayed += replay(v, 0);
        repair += t.elapsed();
      }
      rec.shards_restored = scope_.victims.size();
    }
    rec.restart_unit = done_ + 1;
    rec.units_lost = 0;
  } else {
    // Whole-group rollback to the last fully committed global epoch.
    if (kind_ == DurabilityKind::kCheckpoint) {
      const GroupCoordinator::Marker marker = coordinator_->reload();
      rec.torn_chunks += coordinator_->last_restore_torn();
      const auto epoch = static_cast<std::size_t>(marker.epoch);
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        ckpts_[i]->restore_version(epoch == 0 ? 0 : marker.versions[i]);
        rec.candidates_checked += ckpts_[i]->last_restore().chunks_probed;
        rec.torn_chunks += ckpts_[i]->last_restore().torn_chunks;
        rec.salvaged_chunks += ckpts_[i]->last_restore().salvaged_chunks;
        saved_version_[i] = marker.versions[i];
        last_saved_epoch_[i] = epoch;
        parts_[i]->restored(epoch);
        progress_[i] = epoch * plan_->phases();
      }
      done_ = epoch;
      rec.shards_restored = epoch > 0 ? parts_.size() : 0;
      rec.epochs_rolled_back = crashed_done_ - done_;
    } else {
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        parts_[i]->restored(0);
        progress_[i] = 0;
      }
      done_ = 0;
    }
    rec.restart_unit = done_ + 1;
    rec.units_lost = crashed_done_ - done_;
  }

  rec.halo_bytes = exchange_.fetched_bytes() - fetched_before;
  rec.repair_seconds = repair;
  return rec;
}

bool ShardGroup::verify() {
  if (use_fallback_) return ensure_fallback().verify();
  std::vector<ShardPart*> raw;
  raw.reserve(parts_.size());
  for (const auto& p : parts_) raw.push_back(p.get());
  return plan_->verify(raw);
}

}  // namespace adcc::core
