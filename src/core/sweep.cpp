#include "core/sweep.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "core/telemetry.hpp"
#include "kernels/backend.hpp"
#include "kernels/threads.hpp"

namespace adcc::core {

namespace {

// Expansion guards: a mistyped range like n=1:64M would otherwise expand into
// millions of cells before the engine ever runs one.
constexpr std::size_t kMaxAxisValues = 4096;
constexpr std::size_t kMaxDeckCells = 100'000;

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string_view::npos) return out;
    start = pos + 1;
  }
}

/// The axes whose values are names, not numbers: never range-expanded, and the
/// crash axis may contain ':' freely (point:cg:p_updated:15). ckpt_compress is
/// here because "lz:2" would otherwise parse as a numeric range.
bool is_string_axis(std::string_view key) {
  return key == "workload" || key == "mode" || key == "crash" || key == "policy" ||
         key == "backend" || key == "ckpt_compress";
}

bool expand_string_token(std::string_view key, std::string_view tok,
                         std::vector<std::string>& out, std::string* error) {
  const std::string token(tok);
  if (key == "mode") {
    if (token == "all") {
      for (Mode m : all_modes()) out.push_back(mode_name(m));
      return true;
    }
    const auto m = parse_mode(token);
    if (!m) {
      std::string known;
      for (Mode k : all_modes()) known += " " + mode_name(k);
      return fail(error, "axis 'mode': unknown mode '" + token + "' (known:" + known + ")");
    }
    out.push_back(mode_name(*m));
    return true;
  }
  if (key == "workload") {
    auto& registry = WorkloadRegistry::instance();
    if (token == "all") {
      // The *-sim workloads ignore the mode axis (the simulator fixes the
      // durability scheme), so `all` excludes them — sweep them by name.
      for (const auto& name : registry.names()) {
        if (!name.ends_with("-sim")) out.push_back(name);
      }
      return true;
    }
    if (!registry.contains(token)) {
      return fail(error, "axis 'workload': unknown workload '" + token + "' (try --list)");
    }
    out.push_back(token);
    return true;
  }
  if (key == "crash") {
    const auto crash = parse_crash(token);
    if (!crash) {
      return fail(error, "axis 'crash': malformed crash plan '" + token +
                             "' (want none | step:K | random[:SEED] | repeat:N | access:N | "
                             "point:NAME[:K] | fuzz:SEED | flip:SEED[:BITS])");
    }
    out.push_back(crash_name(*crash));
    return true;
  }
  if (key == "backend") {
    // Eager validation against the registry: requesting a backend this build
    // did not compile (omp without -DADCC_OPENMP=ON) is a deck parse error,
    // not UB at run time.
    if (find_kernel_backend(token) == nullptr) {
      std::string built;
      for (const std::string& name : kernel_backend_names()) built += " " + name;
      return fail(error,
                  "axis 'backend': unknown kernel backend '" + token + "' (built:" + built + ")");
    }
    out.push_back(token);
    return true;
  }
  if (key == "ckpt_compress") {
    // Eager codec validation: a typo'd codec spec is a deck parse error, not
    // a per-cell failure row.
    checkpoint::CodecSpec spec;
    std::string why;
    if (!checkpoint::parse_codec(token, &spec, &why)) {
      return fail(error, "axis 'ckpt_compress': " + why);
    }
    out.push_back(token);
    return true;
  }
  // policy
  if (token != "basic" && token != "selective" && token != "every") {
    return fail(error, "axis 'policy': want basic | selective | every, got '" + token + "'");
  }
  out.push_back(token);
  return true;
}

bool expand_numeric_token(std::string_view key, std::string_view tok,
                          std::vector<std::string>& out, std::string* error) {
  const std::string context = "axis '" + std::string(key) + "'";
  if (tok.find(':') == std::string_view::npos) {
    out.push_back(std::string(tok));  // Literal (numeric or not) — pass through.
    return true;
  }
  const auto parts = split(tok, ':');
  if (parts.size() > 3) {
    return fail(error, context + ": range '" + std::string(tok) +
                           "' has more than three ':'-separated fields");
  }
  const auto lo = parse_size(parts[0]);
  const auto hi = parse_size(parts[1]);
  if (!lo || !hi) {
    return fail(error, context + ": range bounds in '" + std::string(tok) +
                           "' must be sizes (123, 4K, 1M, ...)");
  }
  if (*hi < *lo) {
    return fail(error, context + ": empty range '" + std::string(tok) + "' (hi < lo)");
  }

  std::size_t step = 1;
  std::size_t factor = 0;  // 0 = additive.
  if (parts.size() == 3) {
    std::string_view sp = parts[2];
    if (!sp.empty() && (sp.front() == 'x' || sp.front() == 'X')) {
      sp.remove_prefix(1);
      std::uint64_t f = 0;
      const auto [ptr, ec] = std::from_chars(sp.data(), sp.data() + sp.size(), f);
      if (ec != std::errc() || ptr != sp.data() + sp.size() || f < 2) {
        return fail(error, context + ": geometric step in '" + std::string(tok) +
                               "' must be xF with integer F >= 2");
      }
      factor = static_cast<std::size_t>(f);
      if (*lo == 0) {
        return fail(error, context + ": geometric range needs lo >= 1");
      }
    } else {
      const auto s = parse_size(sp);
      if (!s || *s == 0) {
        return fail(error, context + ": step in '" + std::string(tok) +
                               "' must be a size >= 1 or xF");
      }
      step = *s;
    }
  }

  for (std::size_t v = *lo;;) {
    out.push_back(std::to_string(v));
    if (out.size() > kMaxAxisValues) {
      return fail(error, context + ": range '" + std::string(tok) + "' expands past " +
                             std::to_string(kMaxAxisValues) + " values");
    }
    if (factor != 0) {
      if (v > *hi / factor) break;  // Next value would pass hi (or overflow).
      v *= factor;
    } else {
      if (*hi - v < step) break;
      v += step;
    }
  }
  return true;
}

bool valid_axis_key(std::string_view key) {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<SweepAxis> make_axis(std::string_view key, std::string_view values,
                                   std::string* error) {
  SweepAxis axis;
  axis.key = std::string(trim(key));
  if (!valid_axis_key(axis.key)) {
    fail(error, "bad axis key '" + std::string(key) + "' (want [a-z0-9_]+)");
    return std::nullopt;
  }
  const std::string_view spec = trim(values);
  if (spec.empty()) {
    fail(error, "axis '" + axis.key + "' has no values");
    return std::nullopt;
  }
  for (const std::string_view raw : split(spec, '+')) {
    const std::string_view tok = trim(raw);
    if (tok.empty()) {
      fail(error, "axis '" + axis.key + "' has an empty '+'-separated token");
      return std::nullopt;
    }
    const bool ok = is_string_axis(axis.key)
                        ? expand_string_token(axis.key, tok, axis.values, error)
                        : expand_numeric_token(axis.key, tok, axis.values, error);
    if (!ok) return std::nullopt;
    if (axis.values.size() > kMaxAxisValues) {
      fail(error, "axis '" + axis.key + "' expands past " + std::to_string(kMaxAxisValues) +
                      " values");
      return std::nullopt;
    }
  }
  return axis;
}

std::optional<SweepSpec> parse_sweep(std::string_view spec, std::string* error) {
  SweepSpec out;
  if (trim(spec).empty()) {
    fail(error, "empty sweep spec");
    return std::nullopt;
  }
  for (const std::string_view raw : split(spec, ',')) {
    const std::string_view part = trim(raw);
    if (part.empty()) {
      fail(error, "empty axis (stray ',')");
      return std::nullopt;
    }
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) {
      fail(error, "axis '" + std::string(part) + "' is missing '='");
      return std::nullopt;
    }
    auto axis = make_axis(part.substr(0, eq), part.substr(eq + 1), error);
    if (!axis) return std::nullopt;
    if (out.find(axis->key) != nullptr) {
      fail(error, "duplicate axis '" + axis->key + "'");
      return std::nullopt;
    }
    out.axes.push_back(std::move(*axis));
  }
  if (out.cells() > kMaxDeckCells) {
    fail(error, "deck expands to " + std::to_string(out.cells()) + " cells (cap " +
                    std::to_string(kMaxDeckCells) + ")");
    return std::nullopt;
  }
  return out;
}

std::size_t SweepSpec::cells() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) {
    // Saturate instead of overflowing; parse_sweep rejects anything over the
    // deck cap anyway.
    if (axis.values.size() != 0 && n > kMaxDeckCells) return n;
    n *= std::max<std::size_t>(1, axis.values.size());
  }
  return n;
}

const SweepAxis* SweepSpec::find(std::string_view key) const {
  for (const SweepAxis& axis : axes) {
    if (axis.key == key) return &axis;
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::string>> SweepSpec::assignment(
    std::size_t index) const {
  ADCC_CHECK(index < cells(), "sweep cell index out of range");
  std::vector<std::pair<std::string, std::string>> out(axes.size());
  // First axis slowest-varying. Strides accumulate from the last (fastest)
  // axis inward, independent of cells() — which saturates past the deck cap.
  std::size_t stride = 1;
  for (std::size_t i = axes.size(); i-- > 0;) {
    const SweepAxis& axis = axes[i];
    out[i] = {axis.key, axis.values[(index / stride) % axis.values.size()]};
    stride *= axis.values.size();
  }
  return out;
}

std::string SweepSpec::canonical() const {
  std::string out;
  for (const SweepAxis& axis : axes) {
    if (!out.empty()) out += ',';
    out += axis.key;
    out += '=';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i != 0) out += '+';
      out += axis.values[i];
    }
  }
  return out;
}

namespace {

/// Values memoized across deck cells sharing a problem shape (native
/// baselines, fuzz probes), safe under concurrent workers: the first cell to
/// ask computes, the rest block on a shared future (a failed computation
/// rethrows into every waiting cell).
template <typename V>
class SharedCache {
 public:
  V get_or_compute(const std::string& key, const std::function<V()>& fn) {
    std::promise<V> promise;
    std::shared_future<V> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it == cache_.end()) {
        future = promise.get_future().share();
        cache_.emplace(key, future);
        owner = true;
      } else {
        future = it->second;
      }
    }
    if (owner) {
      try {
        promise.set_value(fn());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

  /// Seeds `key` with an already-measured value (a native/none cell offering
  /// its own run as the shape's baseline). Returns the stored value — the
  /// offered one, or an earlier cell's if it won the race.
  V put_or_get(const std::string& key, V value) {
    std::shared_future<V> future;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it == cache_.end()) {
        std::promise<V> promise;
        promise.set_value(value);
        cache_.emplace(key, promise.get_future().share());
        return value;
      }
      future = it->second;
    }
    return future.get();
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_future<V>> cache_;
};

using BaselineCache = SharedCache<double>;
using FuzzBoundaries = std::shared_ptr<const std::vector<std::uint64_t>>;
using FuzzProbeCache = SharedCache<FuzzBoundaries>;

ScenarioConfig cell_config(const Workload& workload, Mode mode, const CrashScenario& crash,
                           const Options& opts, const std::filesystem::path& scratch) {
  ScenarioConfig sc;
  sc.mode = mode;
  sc.crash = crash;
  sc.env.scratch_dir = scratch;
  sc.env.disk_throttle_bytes_per_s = opts.get_double("disk_mbps", 150.0) * 1e6;
  // Durability-engine knobs, sweepable like any other axis.
  sc.env.ckpt_threads = std::max(1, static_cast<int>(opts.get_int("ckpt_threads", 1)));
  sc.env.ckpt_chunk_bytes =
      std::max<std::size_t>(1u << 10, opts.get_size("ckpt_chunk_kb", 256) << 10);
  sc.env.ckpt_async = opts.get_bool("ckpt_async");
  if (opts.has("ckpt_compress")) {
    std::string why;
    ADCC_CHECK(checkpoint::parse_codec(opts.get("ckpt_compress", "none"),
                                       &sc.env.ckpt_compress, &why),
               ("bad --ckpt_compress: " + why).c_str());
  }
  sc.env.ckpt_async_depth = std::max(1, static_cast<int>(opts.get_int("ckpt_async_depth", 1)));
  sc.env.ckpt_dirty_commit = opts.get_bool("ckpt_dirty_commit");
  ADCC_CHECK(!sc.env.ckpt_dirty_commit || opts.get_size("shards", 1) <= 1,
             "--ckpt_dirty_commit is incompatible with shards > 1 (coordinated "
             "rollback needs exactly-committed slot versions)");
  workload.tune_env(mode, sc.env);
  if (opts.has("arena")) sc.env.arena_bytes = opts.get_size("arena", sc.env.arena_bytes);
  if (opts.has("slot")) sc.env.slot_bytes = opts.get_size("slot", sc.env.slot_bytes);
  sc.reps = std::max(1, static_cast<int>(opts.get_int("reps", 1)));
  sc.warmup = opts.get_bool("warmup", false);
  sc.verify = opts.get_bool("verify", true);
  return sc;
}

/// The baseline is a function of everything except the durability-only axes:
/// mode and crash are forced to native/none in the baseline run, policy only
/// selects a flush scheme the native run never executes, and the
/// checkpoint-engine knobs (threads/chunking/async, the disk device model)
/// configure a backend the native run never builds. Cells differing only in
/// those share one baseline — which also keeps self-relative gates (e.g. the
/// ckpt_async overhead ratio) free of native-measurement noise between cells.
/// The shard axes also drop out: the native baseline of a sharded cell is the
/// single-rank run of the same problem, so "shards=4 overhead" is measured
/// against the same denominator as "shards=1 overhead". Likewise the compute
/// axes (backend/threads): baselines always run on the serial backend, so a
/// backend=serial+omp,threads=1:8:x2 deck shares ONE native baseline per shape
/// and every speedup/overhead ratio uses the same denominator.
std::string baseline_key(const std::string& workload,
                         const std::vector<std::pair<std::string, std::string>>& assignment) {
  std::string key = workload;
  for (const auto& [k, v] : assignment) {
    if (k == "mode" || k == "crash" || k == "policy" || k == "ckpt_threads" ||
        k == "ckpt_chunk_kb" || k == "ckpt_async" || k == "ckpt_compress" ||
        k == "ckpt_async_depth" || k == "ckpt_dirty_commit" || k == "disk_mbps" ||
        k == "shards" || k == "shard_stagger" || k == "backend" || k == "threads") {
      continue;
    }
    key += '\x1f' + k + '=' + v;
  }
  return key;
}

SweepCellResult run_cell(const SweepSpec& spec, const SweepConfig& cfg, std::size_t index,
                         const std::filesystem::path& scratch_root, BaselineCache& baselines,
                         FuzzProbeCache& fuzz_probes) {
  SweepCellResult cell;
  cell.index = index;
  cell.assignment = spec.assignment(index);

  Options opts = cfg.base;
  for (const auto& [k, v] : cell.assignment) opts.set(k, v);
  cell.workload = opts.get("workload", "cg");
  cell.mode_label = opts.get("mode", "native");
  cell.crash_label = opts.get("crash", "none");

  try {
    const auto mode = parse_mode(cell.mode_label);
    ADCC_CHECK(mode.has_value(), "sweep cell needs a single resolvable mode");
    const auto crash = parse_crash(cell.crash_label);
    ADCC_CHECK(crash.has_value(), "sweep cell has a malformed crash plan");
    cell.mode_label = mode_name(*mode);
    cell.crash_label = crash_name(*crash);

    // Per-worker OpenMP team sizing: the scope sets the calling thread's ICV
    // (so concurrent workers sweeping a `threads` axis don't stomp each other)
    // and restores the previous value when the cell ends — a threads axis
    // can't leak into later cells or whatever runs after the deck.
    const ScopedOmpThreads thread_scope(
        opts.has("threads") ? std::max(1, static_cast<int>(opts.get_int("threads", 1))) : 0);

    auto& registry = WorkloadRegistry::instance();
    const auto workload = registry.create(cell.workload, opts);
    const std::filesystem::path scratch = scratch_root / ("cell" + std::to_string(index));
    ScenarioConfig sc = cell_config(*workload, *mode, *crash, opts, scratch);
    // Only the main scenario gets the cell's backend: cell_config is shared
    // with the baseline and fuzz-probe configs below, which must stay serial
    // (null = the serial default) so backends share one native baseline.
    const std::string backend_name = opts.get("backend", "serial");
    sc.backend = &kernel_backend(backend_name);

    // Per-cell stage-timer registry (the baseline and fuzz-probe runs below
    // use their own ScenarioConfigs and stay unbound, so the memoized native
    // baseline is never perturbed by telemetry).
    std::optional<Telemetry> telemetry;
    if (cfg.telemetry || cfg.trace != nullptr) {
      telemetry.emplace();
      telemetry->set_trace(cfg.trace);
      sc.telemetry = &*telemetry;
      sc.telemetry_label = "cell" + std::to_string(index);
    }

    // A crash-free native cell IS its shape's baseline: it offers its own
    // measurement to the cache (normalized 1.000) instead of paying a second
    // native run. Every other cell fetches (or computes) the shared baseline.
    const bool want_baseline = cfg.baseline && !opts.get_bool("no_baseline");
    // Sharded native cells don't self-seed the cache: the shared baseline is
    // the SINGLE-RANK native run (shards is not part of the baseline key), so
    // a shards=4 native measurement under the shards-agnostic key would skew
    // every sibling's overhead column.
    // ... and only a SERIAL-backend cell may self-seed: backend/threads drop
    // out of the baseline key (one native baseline per shape), so an omp
    // native measurement under the backend-agnostic key would skew every
    // sibling's speedup/overhead column.
    const bool self_baseline = want_baseline && *mode == Mode::kNative &&
                               crash->kind == CrashScenario::Kind::kNone &&
                               opts.get_size("shards", 1) <= 1 && backend_name == "serial";
    const std::string shape = baseline_key(cell.workload, cell.assignment);
    if (want_baseline && !self_baseline) {
      cell.native_seconds = baselines.get_or_compute(shape, [&] {
        Options bopts = opts;
        bopts.set("shards", "1");
        const auto native = registry.create(cell.workload, bopts);
        ScenarioConfig nc = cell_config(*native, Mode::kNative, {}, bopts, scratch);
        nc.verify = false;
        return run_scenario(*native, nc).seconds;
      });
    }
    sc.native_seconds = cell.native_seconds;

    // Fuzz plans need one untimed probe of the per-unit access boundaries.
    // The boundaries depend on everything BUT the crash plan (unlike the
    // native baseline they run under the cell's real mode and policy), so the
    // probe key keeps every other axis — and a crash=fuzz:A+fuzz:B+... axis
    // shares a single probe per cell shape instead of paying one probe
    // repetition per seed.
    if (crash->kind == CrashScenario::Kind::kFuzz ||
        crash->kind == CrashScenario::Kind::kFlip) {
      std::string probe_key = cell.workload + '\x1f' + cell.mode_label;
      for (const auto& [k, v] : cell.assignment) {
        if (k == "workload" || k == "mode" || k == "crash") continue;
        probe_key += '\x1f' + k + '=' + v;
      }
      sc.fuzz_boundaries =
          fuzz_probes.get_or_compute(probe_key, [&] {
            const auto probe = registry.create(cell.workload, opts);
            ScenarioConfig pc = cell_config(*probe, *mode, {}, opts, scratch);
            return std::make_shared<const std::vector<std::uint64_t>>(
                probe_fuzz_boundaries(*probe, *mode, pc.env));
          });
    }

    cell.result = ScenarioRunner(*workload, sc).run();
    if (telemetry) {
      cell.telemetry = true;
      cell.t_stage = telemetry->seconds("ckpt/stage");
      cell.t_crc = telemetry->seconds("ckpt/crc");
      cell.t_comp = telemetry->seconds("ckpt/compress");
      cell.t_io = telemetry->seconds("ckpt/queue");
      cell.t_drain = telemetry->seconds("ckpt/drain");
      cell.t_kernel = telemetry->prefix_seconds("kernel/");
      cell.t_spmv = telemetry->seconds("kernel/spmv");
      cell.t_gemm = telemetry->seconds("kernel/gemm");
      cell.t_xs = telemetry->seconds("kernel/xs");
    }
    if (self_baseline) {
      cell.native_seconds = baselines.put_or_get(shape, cell.result.seconds);
      cell.result.time = normalize(cell.result.seconds, cell.native_seconds);
    }
    // Flip cells stay "ok" when the outcome is an *accounted* silent-fault
    // result: an undefended mode missing the corruption entirely (the honest
    // miss — flips > 0, detected == 0) or an in-place repair that verify
    // exposes as a miscorrection (the miscorr column carries it). A
    // detected-and-rolled-back flip, by contrast, must end verified —
    // rollback restores pre-corruption state — so a verify failure there is
    // a genuine engine fault, not a measured outcome.
    const RecomputationBreakdown& rb = cell.result.recomputation;
    const bool accounted_flip_outcome =
        rb.flips > 0 && (rb.flips_detected == 0 || rb.flips_corrected > 0);
    cell.status =
        cell.result.verify_ran && !cell.result.verified && !accounted_flip_outcome
            ? SweepCellResult::Status::kVerifyFailed
            : SweepCellResult::Status::kOk;
  } catch (const std::exception& e) {
    cell.status = SweepCellResult::Status::kError;
    cell.error = e.what();
  }
  return cell;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, const SweepConfig& cfg) {
  SweepResult out;
  out.spec = spec;
  const std::size_t n = spec.cells();
  // parse_sweep enforces this for user-written specs, but callers can grow a
  // parsed spec (adccbench injects workload/mode/crash axes afterwards).
  ADCC_CHECK(n <= kMaxDeckCells, "sweep deck expands past the cell cap");
  out.cells.resize(n);

  const std::filesystem::path scratch_root =
      cfg.scratch_root.empty()
          ? std::filesystem::temp_directory_path() / ("adcc_sweep." + std::to_string(::getpid()))
          : cfg.scratch_root;

  BaselineCache baselines;
  FuzzProbeCache fuzz_probes;
  const int jobs = std::max(1, std::min<int>(cfg.jobs, static_cast<int>(n)));
  if (jobs == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out.cells[i] = run_cell(spec, cfg, i, scratch_root, baselines, fuzz_probes);
    }
  } else {
    // Results land in deck order regardless of which worker ran which cell, so
    // the emitted table is independent of scheduling.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i; (i = next.fetch_add(1)) < n;) {
          out.cells[i] = run_cell(spec, cfg, i, scratch_root, baselines, fuzz_probes);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Cell scratch dirs are removed by their FileBackends (when empty); drop the
  // root too if nothing is left in it.
  std::error_code ec;
  std::filesystem::remove(scratch_root, ec);
  return out;
}

bool SweepResult::all_ok() const {
  return count(SweepCellResult::Status::kOk) == cells.size();
}

std::size_t SweepResult::count(SweepCellResult::Status s) const {
  std::size_t n = 0;
  for (const SweepCellResult& cell : cells) n += cell.status == s ? 1 : 0;
  return n;
}

Table SweepResult::table(bool timing) const {
  std::vector<std::string> headers = {"cell", "workload", "mode", "crash"};
  std::vector<std::string> extra;  // Non-core axis columns, in spec order.
  for (const SweepAxis& axis : spec.axes) {
    if (axis.key != "workload" && axis.key != "mode" && axis.key != "crash") {
      extra.push_back(axis.key);
      headers.push_back(axis.key);
    }
  }
  for (const char* h : {"units", "seconds", "normalized", "overhead", "lost", "partial",
                        "corrected", "torn", "salvaged", "overlap", "detect/unit",
                        "resume/unit", "victims", "epochs_rb", "replayed", "halo_kb",
                        "flips", "detected", "detect_lat", "miscorr",
                        "t_stage", "t_crc", "t_comp", "t_io", "t_drain", "t_kernel", "t_spmv",
                        "t_gemm", "t_xs", "status"}) {
    headers.emplace_back(h);
  }

  Table table(std::move(headers));
  for (const SweepCellResult& cell : cells) {
    std::vector<std::string> row = {std::to_string(cell.index), cell.workload,
                                    cell.mode_label, cell.crash_label};
    for (const std::string& key : extra) {
      std::string value = "-";
      for (const auto& [k, v] : cell.assignment) {
        if (k == key) value = v;
      }
      row.push_back(std::move(value));
    }
    if (cell.status == SweepCellResult::Status::kError) {
      for (int i = 0; i < 29; ++i) row.emplace_back("-");
      row.push_back("ERROR: " + cell.error);
    } else {
      const ScenarioResult& res = cell.result;
      const RecomputationBreakdown& rb = res.recomputation;
      const bool normalized = timing && cell.native_seconds > 0;
      row.push_back(std::to_string(res.work_units));
      row.push_back(timing ? Table::fmt(res.seconds, 4) : "-");
      row.push_back(normalized ? Table::fmt(res.time.normalized, 3) : "-");
      row.push_back(normalized ? Table::fmt(res.time.overhead_percent(), 1) + "%" : "-");
      row.push_back(std::to_string(rb.units_lost));
      row.push_back(std::to_string(rb.partial_units));
      row.push_back(std::to_string(rb.units_corrected));
      row.push_back(std::to_string(rb.torn_chunks));
      row.push_back(std::to_string(rb.salvaged_chunks));
      // Wall-clock-derived like seconds: blanked under --no_timing so serial
      // and parallel decks stay byte-identical.
      row.push_back(timing && rb.overlap_seconds > 0 ? Table::fmt(rb.overlap_seconds, 4) : "-");
      row.push_back(timing && res.crashes > 0 ? Table::fmt(rb.detect_normalized(), 2) : "-");
      row.push_back(timing && res.crashes > 0 ? Table::fmt(rb.resume_normalized(), 2) : "-");
      // Shard-group recovery accounting: pure counts (and a byte count), so
      // they stay populated — and deterministic — under --no_timing.
      row.push_back(std::to_string(rb.shards_restored));
      row.push_back(std::to_string(rb.epochs_rolled_back));
      row.push_back(std::to_string(rb.units_replayed));
      row.push_back(Table::fmt(static_cast<double>(rb.halo_bytes) / 1024.0, 1));
      // Silent-flip accounting: pure counts (deterministic in the flip seed),
      // so they stay populated under --no_timing. Latency is only meaningful
      // once something detected the flip.
      row.push_back(std::to_string(rb.flips));
      row.push_back(std::to_string(rb.flips_detected));
      row.push_back(rb.flips_detected > 0 ? std::to_string(rb.detect_latency_units) : "-");
      row.push_back(std::to_string(rb.flips_miscorrected));
      // Stage breakdown: wall-clock-derived, so blanked under --no_timing
      // (byte-equality) and when the deck ran without telemetry.
      const bool stages = timing && cell.telemetry;
      row.push_back(stages ? Table::fmt(cell.t_stage, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_crc, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_comp, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_io, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_drain, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_kernel, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_spmv, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_gemm, 4) : "-");
      row.push_back(stages ? Table::fmt(cell.t_xs, 4) : "-");
      row.push_back(cell.status == SweepCellResult::Status::kOk ? "ok" : "FAIL:verify");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace adcc::core
