#include "core/modes.hpp"

#include "checkpoint/file_backend.hpp"
#include "checkpoint/hetero_backend.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "common/check.hpp"

namespace adcc::core {

std::string mode_name(Mode m) {
  switch (m) {
    case Mode::kNative: return "native";
    case Mode::kCkptDisk: return "ckpt-disk";
    case Mode::kCkptNvm: return "ckpt-nvm";
    case Mode::kCkptHetero: return "ckpt-nvm/dram";
    case Mode::kPmemTx: return "pmem-tx";
    case Mode::kAlgNvm: return "alg-nvm";
    case Mode::kAlgHetero: return "alg-nvm/dram";
  }
  ADCC_CHECK(false, "unknown mode");
}

std::vector<Mode> all_modes() {
  return {Mode::kNative,     Mode::kCkptDisk, Mode::kCkptNvm, Mode::kCkptHetero,
          Mode::kPmemTx,     Mode::kAlgNvm,   Mode::kAlgHetero};
}

std::optional<Mode> parse_mode(std::string_view name) {
  std::string key(name);
  for (char& c : key) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c == '_') c = '-';
  }
  for (Mode m : all_modes()) {
    if (key == mode_name(m)) return m;
  }
  if (key == "ckpt-hetero" || key == "ckpt-dram") return Mode::kCkptHetero;
  if (key == "alg-hetero" || key == "alg-dram") return Mode::kAlgHetero;
  if (key == "alg" || key == "adcc") return Mode::kAlgNvm;
  if (key == "ckpt" || key == "checkpoint") return Mode::kCkptNvm;
  if (key == "tx" || key == "pmem") return Mode::kPmemTx;
  return std::nullopt;
}

bool is_checkpoint_mode(Mode m) {
  return m == Mode::kCkptDisk || m == Mode::kCkptNvm || m == Mode::kCkptHetero;
}

bool is_algorithm_mode(Mode m) { return m == Mode::kAlgNvm || m == Mode::kAlgHetero; }

DurabilityKind durability_kind(Mode m) {
  switch (m) {
    case Mode::kNative: return DurabilityKind::kNone;
    case Mode::kCkptDisk:
    case Mode::kCkptNvm:
    case Mode::kCkptHetero: return DurabilityKind::kCheckpoint;
    case Mode::kPmemTx: return DurabilityKind::kTransaction;
    case Mode::kAlgNvm:
    case Mode::kAlgHetero: return DurabilityKind::kAlgorithm;
  }
  ADCC_CHECK(false, "unknown mode");
}

ModeEnv make_env(Mode mode, const ModeEnvConfig& cfg) {
  ModeEnv env;
  env.mode = mode;
  env.cfg = cfg;
  if (mode == Mode::kNative) return env;

  // NVM-only modes assume NVM as fast as DRAM (paper's optimistic
  // configuration); hetero modes throttle to 1/8 bandwidth.
  const bool hetero = mode == Mode::kCkptHetero || mode == Mode::kAlgHetero;
  nvm::PerfConfig pc;
  pc.dram_bw_bytes_per_s = cfg.dram_bw_bytes_per_s;
  pc.bandwidth_slowdown = hetero ? cfg.nvm_bandwidth_slowdown : 1.0;
  pc.enabled = hetero;
  env.perf = std::make_unique<nvm::PerfModel>(pc);

  if (mode != Mode::kCkptDisk) {
    env.region = std::make_unique<nvm::NvmRegion>(cfg.arena_bytes, *env.perf,
                                                  mode_name(mode) + ".arena");
  }
  if (hetero) {
    ADCC_CHECK(env.region != nullptr, "hetero modes need an arena");
    env.dram = std::make_unique<nvm::DramCache>(cfg.dram_cache_bytes, *env.region);
  }

  switch (mode) {
    case Mode::kCkptDisk: {
      checkpoint::FileBackendConfig fc;
      fc.directory = cfg.scratch_dir.empty()
                         ? std::filesystem::temp_directory_path() / "adcc_ckpt"
                         : cfg.scratch_dir;
      fc.throttle_bytes_per_s = cfg.disk_throttle_bytes_per_s;
      env.backend = std::make_unique<checkpoint::FileBackend>(fc);
      break;
    }
    case Mode::kCkptNvm:
      env.backend = std::make_unique<checkpoint::NvmBackend>(*env.region, cfg.slot_bytes);
      break;
    case Mode::kCkptHetero:
      env.backend =
          std::make_unique<checkpoint::HeteroBackend>(*env.region, *env.dram, cfg.slot_bytes);
      break;
    default:
      break;  // Tx and algorithm modes build workload-specific state on the arena.
  }
  if (env.backend) {
    checkpoint::ChunkConfig cc;
    cc.chunk_bytes = cfg.ckpt_chunk_bytes;
    cc.threads = cfg.ckpt_threads;
    cc.async = cfg.ckpt_async;
    cc.compress = cfg.ckpt_compress;
    cc.async_depth = cfg.ckpt_async_depth;
    cc.dirty_commit = cfg.ckpt_dirty_commit;
    env.backend->configure_chunks(cc);
  }
  return env;
}

}  // namespace adcc::core
