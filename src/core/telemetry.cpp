#include "core/telemetry.hpp"

#include <cmath>
#include <utility>

#include "common/timer.hpp"

namespace adcc::core {

namespace {

// The thread's ambient binding. Function-local so cross-TU initialization
// order never matters; track is resolved once at bind time so the StageTimer
// hot path never touches the sink's track table.
struct ThreadBinding {
  Telemetry* telemetry = nullptr;
  int track = -1;
  std::string label;
};

ThreadBinding& tls_binding() {
  thread_local ThreadBinding binding;
  return binding;
}

// Minimal JSON string escaping for trace event names / track labels.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceSink

TraceSink::TraceSink() : epoch_(adcc::now_seconds()) {}

int TraceSink::track(const std::string& label) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == label) return static_cast<int>(i);
  }
  tracks_.push_back(label);
  return static_cast<int>(tracks_.size() - 1);
}

void TraceSink::complete(int track, std::string_view name, double start, double end) {
  Event ev;
  ev.name.assign(name);
  ev.ts_us = (start - epoch_) * 1e6;
  ev.dur_us = (end - start) * 1e6;
  ev.track = track;
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceSink::instant(int track, std::string_view name, double at) {
  Event ev;
  ev.name.assign(name);
  ev.ts_us = (at - epoch_) * 1e6;
  ev.dur_us = -1.0;
  ev.track = track;
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t TraceSink::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  // thread_name metadata gives each track a human label in the viewer.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"args\":{\"name\":";
    write_json_string(os, tracks_[i]);
    os << "}}";
  }
  os.precision(3);
  os << std::fixed;
  for (const Event& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_json_string(os, ev.name);
    os << ",\"pid\":1,\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us;
    if (ev.dur_us < 0) {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      os << ",\"ph\":\"X\",\"dur\":" << ev.dur_us;
    }
    os << "}";
  }
  os << "]}\n";
}

// ---------------------------------------------------------------------------
// Telemetry

Telemetry::Stage& Telemetry::stage(std::string_view path) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(path);
  if (it == stages_.end()) {
    it = stages_.try_emplace(std::string(path)).first;
  }
  return it->second;
}

void Telemetry::count(std::string_view path, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(path);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(path)).first;
  }
  it->second.fetch_add(delta, std::memory_order_relaxed);
}

double Telemetry::seconds(std::string_view path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(path);
  if (it == stages_.end()) return 0.0;
  return static_cast<double>(it->second.ns.load(std::memory_order_relaxed)) * 1e-9;
}

std::uint64_t Telemetry::calls(std::string_view path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(path);
  if (it == stages_.end()) return 0;
  return it->second.count.load(std::memory_order_relaxed);
}

std::uint64_t Telemetry::counter(std::string_view path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(path);
  if (it == counters_.end()) return 0;
  return it->second.load(std::memory_order_relaxed);
}

double Telemetry::prefix_seconds(std::string_view prefix) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (auto it = stages_.lower_bound(prefix); it != stages_.end(); ++it) {
    const std::string& path = it->first;
    if (path.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.ns.load(std::memory_order_relaxed);
  }
  return static_cast<double>(total) * 1e-9;
}

void Telemetry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, st] : stages_) {
    st.ns.store(0, std::memory_order_relaxed);
    st.count.store(0, std::memory_order_relaxed);
  }
  for (auto& [path, ctr] : counters_) {
    ctr.store(0, std::memory_order_relaxed);
  }
}

std::vector<Telemetry::Sample> Telemetry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(stages_.size());
  for (const auto& [path, st] : stages_) {
    Sample s;
    s.path = path;
    s.seconds = static_cast<double>(st.ns.load(std::memory_order_relaxed)) * 1e-9;
    s.count = st.count.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void Telemetry::instant(std::string_view name) {
  const ThreadBinding& binding = tls_binding();
  if (binding.telemetry != this || !sink_) return;
  sink_->instant(binding.track, name, adcc::now_seconds());
}

Telemetry* Telemetry::current() { return tls_binding().telemetry; }

TelemetryBinding Telemetry::current_binding() {
  const ThreadBinding& binding = tls_binding();
  return TelemetryBinding{binding.telemetry, binding.label};
}

void Telemetry::record(const char* path, double start, double end, int track) {
  const double elapsed = end - start;
  const auto ns = static_cast<std::uint64_t>(elapsed > 0 ? std::llround(elapsed * 1e9) : 0);
  Stage& st = stage(path);
  st.ns.fetch_add(ns, std::memory_order_relaxed);
  st.count.fetch_add(1, std::memory_order_relaxed);
  if (sink_) sink_->complete(track, path, start, end);
}

// ---------------------------------------------------------------------------
// TelemetryBind

TelemetryBind::TelemetryBind(Telemetry* telemetry, std::string label) {
  ThreadBinding& binding = tls_binding();
  saved_telemetry_ = binding.telemetry;
  saved_track_ = binding.track;
  saved_label_ = std::move(binding.label);
  binding.telemetry = telemetry;
  binding.label = std::move(label);
  TraceSink* sink = telemetry ? telemetry->trace() : nullptr;
  binding.track = sink ? sink->track(binding.label) : -1;
}

TelemetryBind::TelemetryBind(const TelemetryBinding& parent, const std::string& suffix)
    : TelemetryBind(parent.telemetry, parent.label + suffix) {}

TelemetryBind::~TelemetryBind() {
  ThreadBinding& binding = tls_binding();
  binding.telemetry = saved_telemetry_;
  binding.track = saved_track_;
  binding.label = std::move(saved_label_);
}

// ---------------------------------------------------------------------------
// StageTimer

StageTimer::StageTimer(const char* path) {
  const ThreadBinding& binding = tls_binding();
  if (binding.telemetry == nullptr) return;  // telemetry off: no clock read
  telemetry_ = binding.telemetry;
  path_ = path;
  track_ = binding.track;
  start_ = adcc::now_seconds();
}

StageTimer::~StageTimer() {
  if (telemetry_ == nullptr) return;
  telemetry_->record(path_, start_, adcc::now_seconds(), track_);
}

}  // namespace adcc::core
