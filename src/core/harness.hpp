// Measurement harness shared by the benchmark binaries: repeated timed runs,
// normalization against a native baseline, and the detect/resume recovery
// breakdown structure reported by the Fig. 3 / Fig. 7 benches.
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace adcc::core {

/// Wall-clock seconds of one invocation of `fn`.
double time_seconds(const std::function<void()>& fn);

/// Runs `fn` `reps` times and returns the median wall time (first run can be
/// discarded as warmup with `warmup=true`).
double median_seconds(const std::function<void()>& fn, int reps, bool warmup = true);

/// A runtime measurement normalized against the native baseline — the y-axis
/// of Figs. 4, 8 and 13.
struct NormalizedTime {
  double seconds = 0.0;
  double normalized = 0.0;  ///< seconds / native_seconds.
  double overhead_percent() const { return (normalized - 1.0) * 100.0; }
};

NormalizedTime normalize(double seconds, double native_seconds);

/// The Fig. 3 / Fig. 7 recomputation breakdown, normalized by the mean cost of
/// one work unit (CG iteration, submatrix multiplication/addition).
struct RecomputationBreakdown {
  double detect_seconds = 0.0;
  double resume_seconds = 0.0;
  double unit_seconds = 0.0;   ///< Normalizer.
  std::size_t units_lost = 0;      ///< Completed units destroyed by crashes.
  std::size_t partial_units = 0;   ///< Interrupted mid-unit and re-executed.
  std::size_t units_corrected = 0; ///< Repaired from checksums, not recomputed.
  std::size_t torn_chunks = 0;     ///< Detected torn-checkpoint chunks (a save
                                   ///< the crash interrupted, caught by the
                                   ///< chunk CRC/version headers in recovery).
  std::size_t salvaged_chunks = 0; ///< Torn-consistent chunks recovered forward
                                   ///< from an interrupted save instead of
                                   ///< rolling back to the prior version.
  double overlap_seconds = 0.0;    ///< Work-unit execution time spent while an
                                   ///< async checkpoint drain was in flight —
                                   ///< the device window hidden behind compute.

  // Multi-shard group recovery accounting (zero for single-rank runs).
  std::size_t shards_restored = 0;     ///< Victim shards reloaded from their slots.
  std::size_t epochs_rolled_back = 0;  ///< Global epochs lost to coordinator rollbacks.
  std::size_t units_replayed = 0;      ///< Victim-local shard units replayed from
                                       ///< retained exchange logs inside recover().
  std::size_t halo_bytes = 0;          ///< Exchange bytes re-fetched by those replays.

  // Silent-corruption (flip: plans) accounting — zero for fail-stop runs.
  std::size_t flips = 0;               ///< Injected silent bit-flip events.
  std::size_t flips_detected = 0;      ///< Caught by a checksum/invariant check.
  std::size_t flips_corrected = 0;     ///< ...and repaired in place (ABFT).
  std::size_t flips_miscorrected = 0;  ///< In-place repairs that still failed verify.
  std::size_t detect_latency_units = 0;///< Work units between injection and detection.

  /// The paper's "iterations lost" count: destroyed + interrupted units.
  std::size_t units_redone() const { return units_lost + partial_units; }

  double detect_normalized() const { return unit_seconds > 0 ? detect_seconds / unit_seconds : 0; }
  double resume_normalized() const { return unit_seconds > 0 ? resume_seconds / unit_seconds : 0; }
  double total_normalized() const { return detect_normalized() + resume_normalized(); }
};

}  // namespace adcc::core
