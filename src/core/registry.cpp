#include "core/registry.hpp"

#include <sstream>

#include "common/check.hpp"

namespace adcc::core {

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(std::string name, std::string description, WorkloadFactory factory) {
  ADCC_CHECK(!name.empty(), "workload name must be non-empty");
  ADCC_CHECK(factory != nullptr, "workload factory must be callable");
  const auto [it, inserted] =
      entries_.emplace(std::move(name), Entry{std::move(description), std::move(factory)});
  ADCC_CHECK(inserted, "duplicate workload registration");
  (void)it;
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted.
}

const std::string& WorkloadRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  ADCC_CHECK(it != entries_.end(), "unknown workload");
  return it->second.description;
}

std::unique_ptr<Workload> WorkloadRegistry::create(const std::string& name,
                                                   const Options& opts) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream msg;
    msg << "unknown workload '" << name << "'; registered:";
    for (const auto& n : names()) msg << " " << n;
    throw ContractViolation(msg.str());
  }
  std::unique_ptr<Workload> w = it->second.factory(opts);
  ADCC_CHECK(w != nullptr, "workload factory returned null");
  return w;
}

WorkloadRegistrar::WorkloadRegistrar(std::string name, std::string description,
                                     WorkloadFactory factory) {
  WorkloadRegistry::instance().add(std::move(name), std::move(description), std::move(factory));
}

}  // namespace adcc::core
