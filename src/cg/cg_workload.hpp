// CG as a core::Workload — one adapter covering all seven durability modes.
//
// Work unit: one CG iteration (the paper's durability granule for §III-B).
// Per-mode engines, mirroring the fig4 bench's hand-wired variants:
//   native       — cg_step on volatile state, no durability action
//   ckpt-*       — cg_step + per-iteration CheckpointSet::save of p/r/z/scalars
//   pmem-tx      — each iteration one undo-log transaction on a PersistentHeap
//   alg-*        — Fig. 2 history arrays in the NVM arena; the only per-unit
//                  durability action is flushing the iteration-counter line,
//                  and recovery re-derives the restart point from the Eq. 1/2
//                  invariants against the durable rows.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cg/cg.hpp"
#include "checkpoint/checkpoint_set.hpp"
#include "common/options.hpp"
#include "core/fault.hpp"
#include "core/registry.hpp"
#include "core/workload.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::cg {

struct CgWorkloadConfig {
  std::size_t n = 14000;            ///< System rows (fig4 --quick default).
  std::size_t nz_per_row = 15;      ///< Off-diagonal nonzeros per row.
  std::size_t iters = 15;           ///< Fixed trip count (work units).
  std::uint64_t matrix_seed = 42;
  std::uint64_t rhs_seed = 43;
  double invariant_rel_tol = 1e-6;  ///< Eq. 1/2 detection tolerance.
  double verify_rel_tol = 1e-8;     ///< Solution-vs-reference tolerance.
};

/// Builds the config from CLI options (--n, --nz, --iters, --quick).
CgWorkloadConfig cg_workload_config(const Options& opts);

class CgWorkload final : public core::Workload {
 public:
  explicit CgWorkload(const CgWorkloadConfig& cfg);

  std::string name() const override { return "cg"; }
  std::size_t work_units() const override { return cfg_.iters; }
  std::size_t units_done() const override { return done_; }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override;
  void wait_durable() override;
  bool durability_pending() const override;
  void inject_crash() override;
  core::WorkloadRecovery recover() override;
  bool verify() override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& cfg) const override;
  core::FaultSurface* fault() override { return &fault_; }

  /// Current solution estimate (valid once the run completed).
  std::vector<double> solution() const;

 private:
  std::span<double> row(std::span<double> arr, std::size_t r) const {
    return arr.subspan(r * cfg_.n, cfg_.n);
  }
  std::span<const double> crow(std::span<const double> arr, std::size_t r) const {
    return arr.subspan(r * cfg_.n, cfg_.n);
  }
  void alg_write_initial_rows();
  bool alg_rows_consistent(std::size_t j) const;

  CgWorkloadConfig cfg_;
  linalg::CsrMatrix a_;
  std::vector<double> b_;
  std::optional<CgResult> reference_;

  core::ModeEnv* env_ = nullptr;
  core::DurabilityKind engine_ = core::DurabilityKind::kNone;
  core::FaultSurface fault_;      ///< Software-counted mid-unit crash surface.
  std::size_t done_ = 0;
  std::size_t crashed_done_ = 0;  ///< units_done at the last inject_crash.

  // native / ckpt-* state.
  CgState state_;
  struct CkptScalars {
    double rho = 0.0;
    std::uint64_t iter = 0;
  };
  CkptScalars ckpt_scalars_;
  std::unique_ptr<checkpoint::CheckpointSet> ckpt_;

  // pmem-tx state.
  std::unique_ptr<pmemtx::PersistentHeap> heap_;
  std::unique_ptr<pmemtx::UndoLog> log_;
  std::span<double> tx_p_, tx_r_, tx_z_, tx_scalars_;
  std::vector<double> tx_q_;
  double tx_rho_ = 0.0;

  // alg-* state: Fig. 2 history arrays (iteration-major rows, row 0 unused).
  std::span<double> hp_, hq_, hr_, hz_;
  std::span<std::int64_t> counter_;
  double alg_rho_ = 0.0;
};

/// Arena bytes the alg-* engines need for an n-row system at `iters`.
std::size_t cg_workload_arena_bytes(std::size_t n, std::size_t iters);

}  // namespace adcc::cg
