#include "cg/cg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

using linalg::CsrMatrix;

void cg_init(const CsrMatrix& a, std::span<const double> b, CgState& s) {
  const std::size_t n = a.rows();
  ADCC_CHECK(b.size() == n, "rhs size mismatch");
  s.p.assign(b.begin(), b.end());  // x0 = 0 → r0 = b, p1 = r0.
  s.r.assign(b.begin(), b.end());
  s.q.assign(n, 0.0);
  s.z.assign(n, 0.0);
  s.rho = linalg::dot(s.r, s.r);
  s.iter = 0;
}

void cg_step(const CsrMatrix& a, CgState& s) {
  a.spmv(s.p, s.q);                               // q ← A·p
  const double pq = linalg::dot(s.p, s.q);
  ADCC_CHECK(pq > 0, "A is not positive definite along p");
  const double alpha = s.rho / pq;
  linalg::axpy(alpha, s.p, s.z);                  // z ← z + α·p
  linalg::axpy(-alpha, s.q, s.r);                 // r ← r − α·q
  const double rho_new = linalg::dot(s.r, s.r);
  const double beta = rho_new / s.rho;
  s.rho = rho_new;
  linalg::xpay(s.r, beta, s.p, s.p);              // p ← r + β·p
  ++s.iter;
}

CgResult cg_solve(const CsrMatrix& a, std::span<const double> b, std::size_t iters) {
  CgState s;
  cg_init(a, b, s);
  for (std::size_t i = 0; i < iters; ++i) cg_step(a, s);
  CgResult res;
  res.x = std::move(s.z);
  res.iters = iters;
  res.residual_norm = true_residual(a, b, res.x);
  return res;
}

double true_residual(const CsrMatrix& a, std::span<const double> b, std::span<const double> x) {
  std::vector<double> ax(a.rows());
  a.spmv(x, ax);
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double d = b[i] - ax[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace adcc::cg
