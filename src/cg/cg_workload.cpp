#include "cg/cg_workload.hpp"

#include <cmath>

#include "cg/cg_cc.hpp"
#include "cg/cg_shard.hpp"
#include "cg/cg_tx.hpp"
#include "core/shard.hpp"
#include "common/align.hpp"
#include "common/check.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

std::size_t cg_workload_arena_bytes(std::size_t n, std::size_t iters) {
  // Four history arrays of (iters + 2) rows plus counter/alignment slack —
  // the fig4 sizing.
  return (iters + 4) * n * sizeof(double) * 4 + (8u << 20);
}

CgWorkloadConfig cg_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  CgWorkloadConfig cfg;
  cfg.n = opts.get_size("n", quick ? 2000 : 14000);
  cfg.nz_per_row = opts.get_size("nz", 15);
  cfg.iters = opts.get_size("iters", quick ? 10 : 15);
  cfg.matrix_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  return cfg;
}

CgWorkload::CgWorkload(const CgWorkloadConfig& cfg)
    : cfg_(cfg),
      a_(linalg::make_spd(cfg.n, cfg.nz_per_row, cfg.matrix_seed)),
      b_(linalg::make_rhs(cfg.n, cfg.rhs_seed)) {
  ADCC_CHECK(cfg_.iters >= 1, "CG workload needs at least one iteration");
}

void CgWorkload::tune_env(core::Mode mode, core::ModeEnvConfig& env) const {
  env.slot_bytes = 4 * cfg_.n * sizeof(double) + (1u << 20);
  switch (core::durability_kind(mode)) {
    case core::DurabilityKind::kAlgorithm:
      env.arena_bytes = cg_workload_arena_bytes(cfg_.n, cfg_.iters);
      break;
    case core::DurabilityKind::kCheckpoint:
      env.arena_bytes = 2 * env.slot_bytes + (8u << 20);  // Two slots + headers.
      break;
    default:
      env.arena_bytes = 1u << 20;  // Native/tx never touch env.region.
      break;
  }
}

void CgWorkload::prepare(core::ModeEnv& env) {
  env_ = &env;
  done_ = 0;
  crashed_done_ = 0;
  fault_.reset_counter();
  // Drop any previous mode's checkpoint set: its backend reference dies with
  // the old env, and a stale async_pending flag must not leak into this run.
  ckpt_.reset();
  engine_ = core::durability_kind(env.mode);

  switch (engine_) {
    case core::DurabilityKind::kNone:
      cg_init(a_, b_, state_);
      break;
    case core::DurabilityKind::kCheckpoint: {
      ADCC_CHECK(env.backend != nullptr, "checkpoint modes need a backend");
      cg_init(a_, b_, state_);
      ckpt_scalars_ = {state_.rho, 0};
      // The chunk engine announces ckpt_chunk / ckpt_restore through the
      // fault surface, so crash plans land inside save and restore too.
      ckpt_ = std::make_unique<checkpoint::CheckpointSet>(
          *env.backend, [this](const char* p) { fault_.point(p); });
      ckpt_->add("p", state_.p.data(), state_.p.size() * sizeof(double));
      ckpt_->add("r", state_.r.data(), state_.r.size() * sizeof(double));
      ckpt_->add("z", state_.z.data(), state_.z.size() * sizeof(double));
      ckpt_->add("scalars", &ckpt_scalars_, sizeof(ckpt_scalars_));
      break;
    }
    case core::DurabilityKind::kTransaction: {
      ADCC_CHECK(env.perf != nullptr, "pmem-tx mode needs a perf model");
      const std::size_t n = cfg_.n;
      heap_ = std::make_unique<pmemtx::PersistentHeap>(cg_tx_data_bytes(n),
                                                       cg_tx_log_bytes(n), *env.perf);
      tx_p_ = heap_->allocate<double>(n);
      tx_r_ = heap_->allocate<double>(n);
      tx_z_ = heap_->allocate<double>(n);
      tx_scalars_ = heap_->allocate<double>(2);
      tx_q_.assign(n, 0.0);
      linalg::copy(b_, tx_p_);
      linalg::copy(b_, tx_r_);
      linalg::zero(tx_z_);
      tx_rho_ = linalg::dot(std::span<const double>(tx_r_), std::span<const double>(tx_r_));
      tx_scalars_[0] = tx_rho_;
      tx_scalars_[1] = 0.0;
      heap_->region().persist(tx_p_.data(), tx_p_.size_bytes());
      heap_->region().persist(tx_r_.data(), tx_r_.size_bytes());
      heap_->region().persist(tx_z_.data(), tx_z_.size_bytes());
      heap_->region().persist(tx_scalars_.data(), tx_scalars_.size_bytes());
      log_ = std::make_unique<pmemtx::UndoLog>(*heap_);
      break;
    }
    case core::DurabilityKind::kAlgorithm: {
      ADCC_CHECK(env.region != nullptr, "algorithm modes need an NVM arena");
      const std::size_t rows = (cfg_.iters + 2) * cfg_.n;
      hp_ = env.region->allocate<double>(rows);
      hq_ = env.region->allocate<double>(rows);
      hr_ = env.region->allocate<double>(rows);
      hz_ = env.region->allocate<double>(rows);
      counter_ = env.region->allocate<std::int64_t>(kCacheLine / sizeof(std::int64_t));
      alg_write_initial_rows();
      counter_[0] = 0;
      env.region->persist(counter_.data(), sizeof(std::int64_t));
      break;
    }
  }
}

void CgWorkload::alg_write_initial_rows() {
  linalg::copy(b_, row(hp_, 1));
  linalg::copy(b_, row(hr_, 1));
  linalg::zero(row(hz_, 1));
  alg_rho_ = linalg::dot(crow(hr_, 1), crow(hr_, 1));
}

bool CgWorkload::run_step() {
  // Fault-surface instrumentation: tick() announces the element accesses each
  // sub-statement touched and point() names the paper's crash sites; either
  // may throw memsim::CrashException mid-unit when ScenarioRunner armed a
  // trigger. All sites precede ++done_ (and the tx commit), so a mid-unit
  // crash never leaves the cursor or the durable image ahead of the crash.
  //
  // Online-ABFT silent-fault detection (alg engines only): while a flip: plan
  // is in flight, re-validate the Eq. 1/2 invariants on the last completed
  // iteration before starting the next — exactly the checks recovery scans
  // with, run online. The flip_active() gate is one relaxed atomic load, so
  // fail-stop and crash-free runs pay nothing.
  if (engine_ == core::DurabilityKind::kAlgorithm && fault_.flip_active() &&
      done_ >= 1 && !alg_rows_consistent(done_)) {
    throw core::SilentFaultDetected("cg:invariant", done_ + 1, fault_.access_count());
  }
  if (done_ >= cfg_.iters) return false;
  const std::size_t n = cfg_.n;
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kCheckpoint:
      cg_step(a_, state_);
      fault_.tick(a_.nnz() + 10 * n);
      // Silent-corruption targets: the state this unit just wrote. Undefended
      // engines carry the flip to verify() as an honest miss; ckpt engines
      // even persist it.
      fault_.corrupt("cg:p", std::span<double>(state_.p));
      fault_.corrupt("cg:r", std::span<double>(state_.r));
      fault_.corrupt("cg:z", std::span<double>(state_.z));
      fault_.point(CgCrashConsistent::kPointPUpdated);
      fault_.point(CgCrashConsistent::kPointIterEnd);
      break;
    case core::DurabilityKind::kTransaction: {
      pmemtx::Transaction tx(*log_);
      tx.add(tx_p_);
      tx.add(tx_r_);
      tx.add(tx_z_);
      tx.add(tx_scalars_);
      a_.spmv(tx_p_, tx_q_);
      fault_.tick(a_.nnz() + 2 * n);
      const double pq = linalg::dot(std::span<const double>(tx_p_),
                                    std::span<const double>(tx_q_));
      fault_.tick(2 * n);
      ADCC_CHECK(pq > 0, "A is not positive definite along p");
      const double alpha = tx_rho_ / pq;
      linalg::axpy(alpha, tx_p_, tx_z_);
      linalg::axpy(-alpha, tx_q_, tx_r_);
      fault_.tick(6 * n);
      const double rho_new =
          linalg::dot(std::span<const double>(tx_r_), std::span<const double>(tx_r_));
      fault_.tick(2 * n);
      const double beta = rho_new / tx_rho_;
      tx_rho_ = rho_new;
      linalg::xpay(std::span<const double>(tx_r_), beta, std::span<const double>(tx_p_), tx_p_);
      fault_.tick(3 * n);
      fault_.corrupt("cg:p", tx_p_);
      fault_.corrupt("cg:r", tx_r_);
      fault_.corrupt("cg:z", tx_z_);
      fault_.point(CgCrashConsistent::kPointPUpdated);
      // "iter_end" = end of compute, before the unit's durability action; no
      // sites may follow the commit (the cursor/durable image would run ahead
      // of a crash the runner then mis-attributes).
      fault_.point(CgCrashConsistent::kPointIterEnd);
      tx_scalars_[0] = tx_rho_;
      tx_scalars_[1] = static_cast<double>(done_ + 1);
      tx.commit();
      break;
    }
    case core::DurabilityKind::kAlgorithm: {
      const std::size_t i = done_ + 1;  // 1-based, matching the Fig. 2 rows.
      a_.spmv(row(hp_, i), row(hq_, i));
      fault_.tick(a_.nnz() + 2 * n);
      const double pq = linalg::dot(crow(hp_, i), crow(hq_, i));
      fault_.tick(2 * n);
      ADCC_CHECK(pq > 0, "A is not positive definite along p");
      const double alpha = alg_rho_ / pq;
      linalg::xpay(crow(hz_, i), alpha, crow(hp_, i), row(hz_, i + 1));
      fault_.tick(3 * n);
      linalg::xpay(crow(hr_, i), -alpha, crow(hq_, i), row(hr_, i + 1));
      fault_.tick(3 * n);
      const double rho_new = linalg::dot(crow(hr_, i + 1), crow(hr_, i + 1));
      fault_.tick(2 * n);
      const double beta = rho_new / alg_rho_;
      alg_rho_ = rho_new;
      linalg::xpay(crow(hr_, i + 1), beta, crow(hp_, i), row(hp_, i + 1));
      fault_.tick(3 * n);
      // Flip targets: the history rows this iteration wrote — exactly what
      // the Eq. 1/2 invariants cover, so the online check above catches the
      // corruption at the next unit's start (detect_lat = 1).
      fault_.corrupt("cg:p", row(hp_, i + 1));
      fault_.corrupt("cg:r", row(hr_, i + 1));
      fault_.corrupt("cg:z", row(hz_, i + 1));
      fault_.point(CgCrashConsistent::kPointPUpdated);
      fault_.point(CgCrashConsistent::kPointIterEnd);
      break;
    }
  }
  ++done_;
  return true;
}

void CgWorkload::make_durable() {
  switch (engine_) {
    case core::DurabilityKind::kNone:
      break;  // Test case 1: no durability mechanism at all.
    case core::DurabilityKind::kCheckpoint:
      ckpt_scalars_ = {state_.rho, static_cast<std::uint64_t>(state_.iter)};
      ckpt_->save();
      break;
    case core::DurabilityKind::kTransaction:
      break;  // The transaction in run_step is the durability action.
    case core::DurabilityKind::kAlgorithm:
      // The entire runtime durability cost: one cache line flushed per unit.
      counter_[0] = static_cast<std::int64_t>(done_);
      env_->region->persist(counter_.data(), sizeof(std::int64_t));
      break;
  }
}

void CgWorkload::wait_durable() {
  // Joins an in-flight async checkpoint drain (--ckpt_async); other engines
  // are durable the moment make_durable returns.
  if (ckpt_) ckpt_->wait_durable();
}

bool CgWorkload::durability_pending() const { return ckpt_ && ckpt_->async_pending(); }

void CgWorkload::inject_crash() {
  crashed_done_ = done_;
  // The power failure cuts off an in-flight checkpoint drain first — the
  // chunks it already pushed are the torn slot recovery will classify — and
  // staged-but-undrained DRAM cache contents die with it.
  if (ckpt_) ckpt_->abort_async();
  if (env_ != nullptr && env_->dram) env_->dram->discard();
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kCheckpoint:
      // Everything in CgState is volatile; clobber it so recovery must
      // genuinely rebuild (native) or restore (ckpt).
      linalg::zero(state_.p);
      linalg::zero(state_.q);
      linalg::zero(state_.r);
      linalg::zero(state_.z);
      state_.rho = 0.0;
      state_.iter = 0;
      break;
    case core::DurabilityKind::kTransaction:
      // The heap survives; the reconstructible q and the cached rho do not.
      linalg::zero(std::span<double>(tx_q_));
      tx_rho_ = 0.0;
      break;
    case core::DurabilityKind::kAlgorithm:
      alg_rho_ = 0.0;  // History arrays and counter line are durable.
      break;
  }
}

bool CgWorkload::alg_rows_consistent(std::size_t j) const {
  const double tol = cfg_.invariant_rel_tol;
  // Eq. 2: r(j+1) = b − A·z(j+1).
  std::vector<double> az(cfg_.n);
  a_.spmv(crow(hz_, j + 1), az);
  double err2 = 0.0, b2 = 0.0;
  const auto rj = crow(hr_, j + 1);
  for (std::size_t t = 0; t < cfg_.n; ++t) {
    const double d = rj[t] - (b_[t] - az[t]);
    err2 += d * d;
    b2 += b_[t] * b_[t];
  }
  if (std::sqrt(err2) > tol * std::sqrt(b2)) return false;

  if (j >= 1) {
    // Eq. 1: p(j+1)ᵀ · q(j) = 0.
    const auto pj = crow(hp_, j + 1);
    const auto qj = crow(hq_, j);
    const double pq = linalg::dot(pj, qj);
    const double np = linalg::norm2(pj);
    const double nq = linalg::norm2(qj);
    if (std::fabs(pq) > tol * (np * nq + 1e-300)) return false;
    if (np == 0.0) return false;
  } else {
    // j = 0: the initialization invariant p₁ = r₁ stands in for Eq. 1.
    const auto p1 = crow(hp_, 1);
    double diff2 = 0.0, r2 = 0.0;
    for (std::size_t t = 0; t < cfg_.n; ++t) {
      const double d = p1[t] - rj[t];
      diff2 += d * d;
      r2 += rj[t] * rj[t];
    }
    if (std::sqrt(diff2) > tol * (std::sqrt(r2) + 1e-300)) return false;
  }
  return true;
}

core::WorkloadRecovery CgWorkload::recover() {
  core::WorkloadRecovery rec;
  switch (engine_) {
    case core::DurabilityKind::kNone:
      cg_init(a_, b_, state_);
      done_ = 0;
      break;
    case core::DurabilityKind::kCheckpoint: {
      const std::uint64_t ver = ckpt_->restore();
      const auto& rs = ckpt_->last_restore();
      rec.candidates_checked += rs.chunks_probed;
      rec.torn_chunks = rs.torn_chunks;
      rec.salvaged_chunks = rs.salvaged_chunks;
      if (ver != 0) {
        state_.rho = ckpt_scalars_.rho;
        state_.iter = static_cast<std::size_t>(ckpt_scalars_.iter);
        // q is reconstructed by the next cg_step; p was checkpointed so the
        // step sequence continues exactly.
        done_ = state_.iter;
      } else {
        cg_init(a_, b_, state_);
        done_ = 0;
      }
      break;
    }
    case core::DurabilityKind::kTransaction: {
      log_->recover();  // Rolls back an uncommitted transaction, if any.
      tx_rho_ = tx_scalars_[0];
      done_ = static_cast<std::size_t>(tx_scalars_[1]);
      break;
    }
    case core::DurabilityKind::kAlgorithm: {
      // Scan j = durable counter … 0 for the first row pair passing the
      // Eq. 1/2 invariants; restart from iteration j + 1 (Fig. 2 recovery).
      const auto durable = static_cast<std::size_t>(counter_[0]);
      bool found = false;
      for (std::size_t j = durable;; --j) {
        ++rec.candidates_checked;
        if (alg_rows_consistent(j)) {
          done_ = j;
          found = true;
          break;
        }
        if (j == 0) break;
      }
      if (!found) {
        alg_write_initial_rows();
        done_ = 0;
      } else {
        alg_rho_ = linalg::dot(crow(hr_, done_ + 1), crow(hr_, done_ + 1));
      }
      break;
    }
  }
  rec.restart_unit = done_ + 1;
  rec.units_lost = crashed_done_ - done_;
  return rec;
}

std::vector<double> CgWorkload::solution() const {
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kCheckpoint:
      return state_.z;
    case core::DurabilityKind::kTransaction:
      return {tx_z_.begin(), tx_z_.end()};
    case core::DurabilityKind::kAlgorithm: {
      const auto z = crow(hz_, done_ + 1);
      return {z.begin(), z.end()};
    }
  }
  ADCC_CHECK(false, "unknown engine");
}

bool CgWorkload::verify() {
  ADCC_CHECK(done_ == cfg_.iters, "verify requires a completed run");
  if (!reference_) reference_ = cg_solve(a_, b_, cfg_.iters);
  const std::vector<double> x = solution();
  const double err = linalg::max_abs_diff(x, reference_->x);
  double scale = 1.0;
  for (const double v : reference_->x) scale = std::max(scale, std::fabs(v));
  return err <= cfg_.verify_rel_tol * scale;
}

ADCC_REGISTER_WORKLOAD(
    "cg", "NPB-style sparse CG solver (paper SIII-B, Figs. 2-4)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      const CgWorkloadConfig cfg = cg_workload_config(opts);
      const std::size_t shards = opts.get_size("shards", 1);
      if (shards > 1) {
        return std::make_unique<core::ShardGroup>(
            std::make_unique<CgShardPlan>(cfg),
            core::ShardGroupConfig{shards, opts.get_bool("shard_stagger", false)},
            [cfg]() -> std::unique_ptr<core::Workload> {
              return std::make_unique<CgWorkload>(cfg);
            });
      }
      return std::make_unique<CgWorkload>(cfg);
    });

}  // namespace adcc::cg
