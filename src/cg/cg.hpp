// Conjugate Gradient (paper Fig. 1) for sparse SPD systems A·x = b.
//
// The iteration state is exactly the paper's four vectors:
//   p — search direction, q = A·p, r — residual, z — solution accumulator
// plus the scalar rho = rᵀr. cg_step advances one iteration in place; all
// crash-consistency variants (checkpointed, transactional, algorithm-directed)
// are thin wrappers around the same numerical kernel, so their overheads are
// directly comparable.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace adcc::cg {

/// Volatile CG state (one iteration's worth).
struct CgState {
  std::vector<double> p, q, r, z;
  double rho = 0.0;
  std::size_t iter = 0;  ///< Completed iterations.
};

/// Initializes state for x₀ = 0: r = b, p = r, z = 0, rho = rᵀr.
void cg_init(const linalg::CsrMatrix& a, std::span<const double> b, CgState& s);

/// One CG iteration (paper Fig. 1 lines 3–10), updating p/q/r/z/rho in place.
void cg_step(const linalg::CsrMatrix& a, CgState& s);

struct CgResult {
  std::vector<double> x;      ///< Solution estimate (the paper's z).
  double residual_norm = 0.;  ///< ‖b − A·x‖₂ recomputed from scratch.
  std::size_t iters = 0;
};

/// Runs `iters` CG iterations (no early exit — matches the paper's fixed-trip
/// main loops) and returns the solution estimate.
CgResult cg_solve(const linalg::CsrMatrix& a, std::span<const double> b, std::size_t iters);

/// ‖b − A·x‖₂.
double true_residual(const linalg::CsrMatrix& a, std::span<const double> b,
                     std::span<const double> x);

}  // namespace adcc::cg
