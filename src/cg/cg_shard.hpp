// CG as a multi-shard plan: contiguous row-block decomposition with a
// per-iteration halo exchange.
//
// Each shard owns a row block of the system — its slices of p/r/z plus a
// replicated rho — and one CG iteration runs as four group phases:
//   0: publish the local p block (the halo everybody needs for SpMV)
//   1: assemble the full p, q_i = A[rows_i]·p, publish the partial dot pᵀq
//   2: reduce pᵀq, alpha-update z/r, publish the partial dot rᵀr
//   3: reduce rᵀr, beta-update p, advance rho
// All reductions sum the per-shard partials in shard order with sequential
// block dots, so every shard computes bitwise-identical scalars and the
// per-shard checkpoint images are deterministic across thread counts.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cg/cg.hpp"
#include "cg/cg_workload.hpp"
#include "core/shard.hpp"

namespace adcc::cg {

class CgShardPlan final : public core::ShardPlan {
 public:
  explicit CgShardPlan(const CgWorkloadConfig& cfg);

  std::string name() const override { return "cg"; }
  std::size_t work_units() const override { return cfg_.iters; }
  std::size_t phases() const override { return 4; }
  std::unique_ptr<core::ShardPart> make_part(std::size_t index, std::size_t count,
                                             core::FaultSurface& fault) override;
  bool verify(const std::vector<core::ShardPart*>& parts) override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const override;

  const CgWorkloadConfig& config() const { return cfg_; }
  const linalg::CsrMatrix& matrix() const { return a_; }
  std::span<const double> rhs() const { return b_; }

 private:
  CgWorkloadConfig cfg_;
  linalg::CsrMatrix a_;
  std::vector<double> b_;
  std::optional<CgResult> reference_;
};

}  // namespace adcc::cg
