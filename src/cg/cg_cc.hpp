// Algorithm-directed crash-consistent CG (paper §III-B, Figs. 2–4).
//
// Extension (Fig. 2): the four iteration vectors become 2-D history arrays
// (one row per iteration), and the only durability action taken at runtime is
// flushing the single cache line holding the iteration counter. The hardware
// cache's own evictions opportunistically persist older rows.
//
// Recovery: starting from the durable iteration counter c, scan j = c … 0 and
// test, against the NVM (durable) image only,
//     (Eq. 1)  p(j+1)ᵀ · q(j) = 0        — conjugacy of consecutive directions
//     (Eq. 2)  r(j+1) = b − A · z(j+1)   — residual identity
// The first j passing both is resumable: re-execute from iteration j+1.
//
// Two execution modes:
//   * CgCrashConsistent  — under memsim (recomputation-cost experiments, Fig. 3)
//   * run_cg_cc_native   — at full speed with real CLFLUSH of the counter line
//                          (runtime-overhead experiments, Fig. 4)
#pragma once

#include <memory>
#include <optional>

#include "cg/cg.hpp"
#include "memsim/tracked.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::cg {

struct CgCcConfig {
  std::size_t n_iters = 15;            ///< Fixed trip count of the main loop.
  memsim::CacheConfig cache;           ///< Simulated volatility boundary.
  double invariant_rel_tol = 1e-6;     ///< Relative tolerance for Eq. 1/2.
};

/// Outcome of one recovery (the Fig. 3 breakdown).
struct CgRecovery {
  std::size_t crash_iter = 0;     ///< Iteration the crash interrupted (1-based).
  std::size_t restart_iter = 0;   ///< First iteration re-executed (1-based).
  std::size_t iters_lost = 0;     ///< crash_iter − restart_iter + 1.
  std::size_t candidates_checked = 0;
  double detect_seconds = 0.0;    ///< "Detecting where to restart".
  double resume_seconds = 0.0;    ///< "Resuming computation time".
};

class CgCrashConsistent {
 public:
  CgCrashConsistent(const linalg::CsrMatrix& a, std::span<const double> b,
                    const CgCcConfig& cfg);

  /// Arm a crash via sim().scheduler() before calling run(). Returns true if
  /// the run was interrupted by a simulated crash.
  bool run();

  /// Executes the next iteration (writing the initial state lazily before
  /// iteration 1). Returns false once the trip count is reached. An armed
  /// crash trigger propagates memsim::CrashException to the caller, with
  /// crash_iter() recorded — the step-wise surface ScenarioRunner drives.
  bool step();

  /// After a crash: detect the resumable iteration from NVM, reload state, and
  /// re-execute up to (and including) the crashed iteration.
  CgRecovery recover_and_resume();

  /// Detection + reload only (phase 1 of recover_and_resume): scans the
  /// durable invariants, reloads live state from NVM, and rewinds the
  /// iteration cursor to restart_iter − 1 so step() re-executes the lost
  /// iterations. The reload time is pre-charged to resume_seconds.
  CgRecovery begin_recovery();

  /// The iteration the last crash interrupted (1-based; 0 before any crash).
  std::size_t crash_iter() const { return crash_iter_; }

  /// Continues normal execution to the configured trip count (post-recovery).
  void finish();

  /// Solution estimate (z row of the last completed iteration).
  std::vector<double> solution() const;

  /// Mean wall-clock seconds of an instrumented iteration (normalizer for the
  /// Fig. 3 ratios).
  double avg_iter_seconds() const;

  std::size_t completed_iters() const { return completed_; }
  memsim::MemorySimulator& sim() { return sim_; }

  /// Crash-point names fired by the iteration body, for scheduler arming.
  static constexpr const char* kPointPUpdated = "cg:p_updated";  ///< Fig. 2 line 10.
  static constexpr const char* kPointIterEnd = "cg:iter_end";

 private:
  std::span<double> row(memsim::TrackedArray<double>& arr, std::size_t r);
  std::span<const double> row(const memsim::TrackedArray<double>& arr, std::size_t r) const;
  void write_initial_state();
  void iteration(std::size_t i);
  void spmv_instrumented(std::size_t p_row, std::size_t q_row);
  bool check_invariants_durable(std::size_t j, std::vector<double>& scratch_p,
                                std::vector<double>& scratch_q, std::vector<double>& scratch_r,
                                std::vector<double>& scratch_z,
                                std::vector<double>& scratch_az) const;

  const linalg::CsrMatrix& a_;
  std::vector<double> b_host_;
  CgCcConfig cfg_;
  std::size_t n_;

  memsim::MemorySimulator sim_;
  // History arrays, iteration-major: row r at offset r*n. Rows 0 unused so the
  // paper's 1-based iteration indexing maps directly.
  memsim::TrackedArray<double> p_, q_, r_, z_;
  memsim::TrackedArray<double> b_;  ///< Read-only region (cache pressure).
  memsim::TrackedArray<double> a_values_;
  memsim::TrackedArray<std::uint32_t> a_colidx_;
  std::unique_ptr<memsim::TrackedScalar<std::int64_t>> iter_;

  double rho_ = 0.0;
  bool started_ = false;
  std::size_t completed_ = 0;
  std::size_t crash_iter_ = 0;
  double iter_seconds_sum_ = 0.0;
  std::size_t iter_seconds_count_ = 0;
};

/// Native-mode algorithm-directed CG: history arrays (the Fig. 2 data-structure
/// extension) + one real CLFLUSH of the counter line per iteration, charged to
/// `region`'s perf model. Overhead vs. cg_solve is the paper's Fig. 4 bar.
struct CgCcNativeResult {
  CgResult cg;
  std::uint64_t counter_flushes = 0;
};
CgCcNativeResult run_cg_cc_native(const linalg::CsrMatrix& a, std::span<const double> b,
                                  std::size_t iters, nvm::NvmRegion& region);

}  // namespace adcc::cg
