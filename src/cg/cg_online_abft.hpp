// Online algorithm-based fault tolerance for CG (paper Fig. 1 line 11 and the
// Online-ABFT lineage the paper builds on, refs. [16]-[20]).
//
// The same residual invariant the crash-recovery path uses —
// r = b − A·z — doubles as an *online soft-error detector*: verify it every
// `check_every` iterations; on violation, roll back to the last verified
// state (kept as an in-memory copy, the scheme of Chen's Online-ABFT) and
// re-execute. This module closes the loop between the paper's two worlds:
// the crash-consistency invariants are exactly the fault-tolerance
// invariants, applied at a different moment.
#pragma once

#include <functional>

#include "cg/cg.hpp"

namespace adcc::cg {

struct OnlineAbftConfig {
  std::size_t check_every = 1;   ///< Verify the invariant every k iterations.
  double rel_tol = 1e-8;         ///< ‖r − (b − A·z)‖ ≤ rel_tol · ‖b‖.
  std::size_t max_retries = 8;   ///< Give up (throw) after this many rollbacks.
};

struct OnlineAbftResult {
  CgResult cg;
  std::uint64_t checks = 0;
  std::uint64_t detections = 0;   ///< Invariant violations observed.
  std::uint64_t rollbacks = 0;    ///< Recovery re-executions performed.
  std::size_t wasted_iterations = 0;  ///< Iterations discarded by rollbacks.
};

/// Injects faults for tests/demos: called after every completed iteration
/// with the mutable CG state; corrupt it to emulate a silent soft error.
using FaultInjector = std::function<void(std::size_t iter, CgState& state)>;

/// Runs `iters` CG iterations with online invariant verification and
/// rollback-based soft-error recovery. Throws ContractViolation if a
/// persistent error defeats `max_retries` rollbacks.
OnlineAbftResult run_cg_online_abft(const linalg::CsrMatrix& a, std::span<const double> b,
                                    std::size_t iters, const OnlineAbftConfig& cfg = {},
                                    const FaultInjector& inject = nullptr);

}  // namespace adcc::cg
