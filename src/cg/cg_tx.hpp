// CG on the PMEM-style undo-log transaction system (paper test case 5).
//
// The three restart vectors live in a persistent heap; each CG iteration is
// one transaction with transactional updates on p, r, z (the paper's PMEM
// configuration, recomputation bounded to one iteration). The measured ~4.3×
// slowdown comes from snapshotting + flushing three full vectors per
// iteration.
#pragma once

#include "cg/cg.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::cg {

struct CgTxResult {
  CgResult cg;
  pmemtx::UndoLogStats log_stats;
};

/// Runs `iters` transactional CG iterations. The heap must be able to hold
/// 4 vectors of n doubles; sizing helper below.
CgTxResult run_cg_tx(const linalg::CsrMatrix& a, std::span<const double> b, std::size_t iters,
                     pmemtx::PersistentHeap& heap);

/// Bytes of heap data space / log space needed for a system of n rows.
std::size_t cg_tx_data_bytes(std::size_t n);
std::size_t cg_tx_log_bytes(std::size_t n);

}  // namespace adcc::cg
