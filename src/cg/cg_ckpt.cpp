#include "cg/cg_ckpt.hpp"

#include "common/check.hpp"

namespace adcc::cg {

namespace {

struct CkptScalars {
  double rho;
  std::uint64_t iter;
};

void register_state(checkpoint::CheckpointSet& set, CgState& s, CkptScalars& scalars) {
  set.add("p", s.p.data(), s.p.size() * sizeof(double));
  set.add("r", s.r.data(), s.r.size() * sizeof(double));
  set.add("z", s.z.data(), s.z.size() * sizeof(double));
  set.add("scalars", &scalars, sizeof(scalars));
}

}  // namespace

CgCkptResult run_cg_checkpointed(const linalg::CsrMatrix& a, std::span<const double> b,
                                 std::size_t iters, checkpoint::Backend& backend) {
  CgState s;
  cg_init(a, b, s);
  CkptScalars scalars{s.rho, 0};
  checkpoint::CheckpointSet set(backend);
  register_state(set, s, scalars);

  CgCkptResult out;
  for (std::size_t i = 0; i < iters; ++i) {
    cg_step(a, s);
    scalars = {s.rho, s.iter};
    set.save();
    ++out.checkpoints;
  }
  out.cg.x = std::move(s.z);
  out.cg.iters = iters;
  out.cg.residual_norm = true_residual(a, b, out.cg.x);
  return out;
}

CgResult resume_cg_checkpointed(const linalg::CsrMatrix& a, std::span<const double> b,
                                std::size_t iters, checkpoint::Backend& backend) {
  CgState s;
  cg_init(a, b, s);
  CkptScalars scalars{s.rho, 0};
  checkpoint::CheckpointSet set(backend);
  register_state(set, s, scalars);

  if (set.restore() != 0) {
    s.rho = scalars.rho;
    s.iter = scalars.iter;
    // q and the dependent state are reconstructed by the next cg_step; p was
    // checkpointed so the step sequence continues exactly.
  }
  while (s.iter < iters) cg_step(a, s);

  CgResult res;
  res.x = std::move(s.z);
  res.iters = iters;
  res.residual_norm = true_residual(a, b, res.x);
  return res;
}

}  // namespace adcc::cg
