// CG with traditional per-iteration checkpointing (paper test cases 2–4).
//
// At the end of every iteration the three restart vectors p, r, z plus the
// scalars (rho, iter) are checkpointed — the paper's configuration giving the
// same one-iteration recomputation bound as the algorithm-directed scheme, for
// a fair runtime comparison.
#pragma once

#include "cg/cg.hpp"
#include "checkpoint/checkpoint_set.hpp"

namespace adcc::cg {

struct CgCkptResult {
  CgResult cg;
  std::uint64_t checkpoints = 0;
};

/// Runs `iters` iterations, checkpointing after each through `backend`.
CgCkptResult run_cg_checkpointed(const linalg::CsrMatrix& a, std::span<const double> b,
                                 std::size_t iters, checkpoint::Backend& backend);

/// Restart path: restores the newest checkpoint into `state` (returns the
/// completed-iteration count, 0 if no checkpoint exists) and finishes the
/// remaining iterations.
CgResult resume_cg_checkpointed(const linalg::CsrMatrix& a, std::span<const double> b,
                                std::size_t iters, checkpoint::Backend& backend);

}  // namespace adcc::cg
