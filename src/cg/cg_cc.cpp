#include "cg/cg_cc.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "linalg/vec_ops.hpp"
#include "nvm/flush.hpp"

namespace adcc::cg {

using linalg::CsrMatrix;

CgCrashConsistent::CgCrashConsistent(const CsrMatrix& a, std::span<const double> b,
                                     const CgCcConfig& cfg)
    : a_(a),
      b_host_(b.begin(), b.end()),
      cfg_(cfg),
      n_(a.rows()),
      sim_(cfg.cache),
      p_(sim_, "cg.p", (cfg.n_iters + 2) * n_),
      q_(sim_, "cg.q", (cfg.n_iters + 2) * n_),
      r_(sim_, "cg.r", (cfg.n_iters + 2) * n_),
      z_(sim_, "cg.z", (cfg.n_iters + 2) * n_),
      b_(sim_, "cg.b", n_, /*read_only=*/true),
      a_values_(sim_, "cg.A.values", a.nnz(), /*read_only=*/true),
      a_colidx_(sim_, "cg.A.colidx", a.nnz(), /*read_only=*/true) {
  ADCC_CHECK(b.size() == n_, "rhs size mismatch");
  std::copy(b.begin(), b.end(), b_.raw().begin());
  std::copy(a.values().begin(), a.values().end(), a_values_.raw().begin());
  std::copy(a.col_idx().begin(), a.col_idx().end(), a_colidx_.raw().begin());
  iter_ = std::make_unique<memsim::TrackedScalar<std::int64_t>>(sim_, "cg.iter", 0);
}

std::span<double> CgCrashConsistent::row(memsim::TrackedArray<double>& arr, std::size_t r) {
  return arr.raw().subspan(r * n_, n_);
}

std::span<const double> CgCrashConsistent::row(const memsim::TrackedArray<double>& arr,
                                               std::size_t r) const {
  return arr.raw().subspan(r * n_, n_);
}

void CgCrashConsistent::write_initial_state() {
  // Row 1 holds the paper's iteration-1 input state: r₁ = p₁ = b, z₁ = 0.
  linalg::copy(b_host_, row(r_, 1));
  r_.touch_write(n_, n_);
  linalg::copy(b_host_, row(p_, 1));
  p_.touch_write(n_, n_);
  linalg::zero(row(z_, 1));
  z_.touch_write(n_, n_);
  b_.touch_read(0, n_);
  rho_ = linalg::dot(row(r_, 1), row(r_, 1));
  r_.touch_read(n_, n_);
}

void CgCrashConsistent::spmv_instrumented(std::size_t p_row, std::size_t q_row) {
  // q[q_row] ← A · p[p_row], announcing accesses block-of-rows at a time: the
  // CSR arrays stream (the traffic that evicts old history rows), the source
  // vector is touched once, the destination row as it is produced.
  constexpr std::size_t kBlock = 512;
  p_.touch_read(p_row * n_, n_);
  const auto row_ptr = a_.row_ptr();
  std::span<const double> x = row(p_, p_row);
  std::span<double> y = row(q_, q_row);
  for (std::size_t r0 = 0; r0 < n_; r0 += kBlock) {
    const std::size_t r1 = std::min(n_, r0 + kBlock);
    for (std::size_t rr = r0; rr < r1; ++rr) y[rr] = a_.spmv_row(rr, x);
    const std::size_t k0 = row_ptr[r0];
    const std::size_t k1 = row_ptr[r1];
    a_values_.touch_read(k0, k1 - k0);
    a_colidx_.touch_read(k0, k1 - k0);
    q_.touch_write(q_row * n_ + r0, r1 - r0);
  }
}

void CgCrashConsistent::iteration(std::size_t i) {
  Timer t;
  // Fig. 2 line 3: make the iteration number durable — the one-line flush that
  // is the entire runtime cost of the scheme.
  iter_->set_and_flush(static_cast<std::int64_t>(i));

  spmv_instrumented(i, i);  // q[i] ← A·p[i]

  p_.touch_read(i * n_, n_);
  q_.touch_read(i * n_, n_);
  const double pq = linalg::dot(row(p_, i), row(q_, i));
  ADCC_CHECK(pq > 0, "A is not positive definite along p");
  const double alpha = rho_ / pq;

  // z[i+1] ← z[i] + α·p[i]
  linalg::xpay(row(z_, i), alpha, row(p_, i), row(z_, i + 1));
  z_.touch_read(i * n_, n_);
  p_.touch_read(i * n_, n_);
  z_.touch_write((i + 1) * n_, n_);

  // r[i+1] ← r[i] − α·q[i]
  linalg::xpay(row(r_, i), -alpha, row(q_, i), row(r_, i + 1));
  r_.touch_read(i * n_, n_);
  q_.touch_read(i * n_, n_);
  r_.touch_write((i + 1) * n_, n_);

  const double rho_new = linalg::dot(row(r_, i + 1), row(r_, i + 1));
  r_.touch_read((i + 1) * n_, n_);
  const double beta = rho_new / rho_;
  rho_ = rho_new;

  // p[i+1] ← r[i+1] + β·p[i]  (Fig. 2 line 11; paper's crash site is line 10)
  linalg::xpay(row(r_, i + 1), beta, row(p_, i), row(p_, i + 1));
  r_.touch_read((i + 1) * n_, n_);
  p_.touch_read(i * n_, n_);
  p_.touch_write((i + 1) * n_, n_);
  sim_.crash_point(kPointPUpdated);

  completed_ = i;
  iter_seconds_sum_ += t.elapsed();
  ++iter_seconds_count_;
  sim_.crash_point(kPointIterEnd);
}

bool CgCrashConsistent::step() {
  if (completed_ >= cfg_.n_iters) return false;
  try {
    if (!started_) {
      write_initial_state();
      started_ = true;
    }
    iteration(completed_ + 1);
  } catch (const memsim::CrashException&) {
    crash_iter_ = completed_ + 1;  // The interrupted iteration.
    throw;
  }
  return true;
}

bool CgCrashConsistent::run() {
  try {
    while (step()) {
    }
  } catch (const memsim::CrashException&) {
    return true;
  }
  return false;
}

bool CgCrashConsistent::check_invariants_durable(std::size_t j, std::vector<double>& sp,
                                                 std::vector<double>& sq, std::vector<double>& sr,
                                                 std::vector<double>& sz,
                                                 std::vector<double>& saz) const {
  const double tol = cfg_.invariant_rel_tol;
  // Durable snapshots of the candidate rows.
  sim_.durable_read(row(r_, j + 1).data(), sr.data(), n_ * sizeof(double));
  sim_.durable_read(row(z_, j + 1).data(), sz.data(), n_ * sizeof(double));

  // Eq. 2: r(j+1) = b − A·z(j+1). This also rejects never-written (all-zero
  // durable) rows because b ≠ 0.
  a_.spmv(sz, saz);
  double err2 = 0.0;
  double b2 = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    const double d = sr[t] - (b_host_[t] - saz[t]);
    err2 += d * d;
    b2 += b_host_[t] * b_host_[t];
  }
  if (std::sqrt(err2) > tol * std::sqrt(b2)) return false;

  if (j >= 1) {
    // Eq. 1: p(j+1)ᵀ · q(j) = 0.
    sim_.durable_read(row(p_, j + 1).data(), sp.data(), n_ * sizeof(double));
    sim_.durable_read(row(q_, j).data(), sq.data(), n_ * sizeof(double));
    const double pq = linalg::dot(sp, sq);
    const double np = linalg::norm2(sp);
    const double nq = linalg::norm2(sq);
    if (std::fabs(pq) > tol * (np * nq + 1e-300)) return false;
    // Guard against the trivially-orthogonal all-zero p row.
    if (np == 0.0) return false;
  } else {
    // j = 0: Eq. 1 has no q(0); the initialization invariant p₁ = r₁ (Fig. 2
    // line 1) stands in. Without it a partially-stale durable p₁ could pass
    // (r₁/z₁ alone say nothing about p) and restart from a corrupt direction.
    sim_.durable_read(row(p_, 1).data(), sp.data(), n_ * sizeof(double));
    double diff2 = 0.0;
    double r2 = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double d = sp[t] - sr[t];
      diff2 += d * d;
      r2 += sr[t] * sr[t];
    }
    if (std::sqrt(diff2) > tol * (std::sqrt(r2) + 1e-300)) return false;
  }
  return true;
}

CgRecovery CgCrashConsistent::begin_recovery() {
  ADCC_CHECK(sim_.crashed(), "recovery requires a prior crash");
  CgRecovery rec;
  if (crash_iter_ == 0) crash_iter_ = completed_ + 1;  // Externally injected crash.
  rec.crash_iter = crash_iter_;

  // ---- Phase 1: detect where to restart (durable image only). ----
  Timer detect;
  const auto durable_iter = static_cast<std::size_t>(iter_->durable());
  std::vector<double> sp(n_), sq(n_), sr(n_), sz(n_), saz(n_);
  std::size_t found = 0;
  bool ok = false;
  // The counter was flushed at the top of iteration `durable_iter`; rows for
  // j > durable_iter cannot exist.
  for (std::size_t j = durable_iter; j + 1 >= 1; --j) {
    ++rec.candidates_checked;
    if (check_invariants_durable(j, sp, sq, sr, sz, saz)) {
      found = j;
      ok = true;
      break;
    }
    if (j == 0) break;
  }
  rec.detect_seconds = detect.elapsed();
  rec.restart_iter = ok ? found + 1 : 1;
  rec.iters_lost = rec.crash_iter - rec.restart_iter + 1;

  // ---- Reload: the restarted process maps NVM (charged to resume). ----
  Timer reload;
  sim_.reset_after_crash();
  sim_.restore_all();  // Live = durable.
  if (!ok) {
    write_initial_state();
  } else {
    rho_ = linalg::dot(row(r_, rec.restart_iter), row(r_, rec.restart_iter));
    r_.touch_read(rec.restart_iter * n_, n_);
  }
  completed_ = rec.restart_iter - 1;  // step() re-executes the lost iterations.
  started_ = true;
  crash_iter_ = 0;
  rec.resume_seconds = reload.elapsed();
  return rec;
}

CgRecovery CgCrashConsistent::recover_and_resume() {
  const std::size_t crashed = crash_iter_ == 0 ? completed_ + 1 : crash_iter_;
  CgRecovery rec = begin_recovery();

  // ---- Phase 2: resume from the detected iteration to the crash point. ----
  Timer resume;
  for (std::size_t i = rec.restart_iter; i <= crashed && i <= cfg_.n_iters; ++i) {
    iteration(i);
  }
  rec.resume_seconds += resume.elapsed();
  return rec;
}

void CgCrashConsistent::finish() {
  for (std::size_t i = completed_ + 1; i <= cfg_.n_iters; ++i) iteration(i);
}

std::vector<double> CgCrashConsistent::solution() const {
  const std::size_t last = completed_ + 1;
  auto sp = row(z_, last);
  return {sp.begin(), sp.end()};
}

double CgCrashConsistent::avg_iter_seconds() const {
  return iter_seconds_count_ == 0 ? 0.0 : iter_seconds_sum_ / static_cast<double>(iter_seconds_count_);
}

// ---------------------------------------------------------------------------

CgCcNativeResult run_cg_cc_native(const CsrMatrix& a, std::span<const double> b,
                                  std::size_t iters, nvm::NvmRegion& region) {
  const std::size_t n = a.rows();
  ADCC_CHECK(b.size() == n, "rhs size mismatch");

  // The Fig. 2 data-structure extension: 2-D history arrays in NVM.
  std::span<double> p = region.allocate<double>((iters + 2) * n);
  std::span<double> q = region.allocate<double>((iters + 2) * n);
  std::span<double> r = region.allocate<double>((iters + 2) * n);
  std::span<double> z = region.allocate<double>((iters + 2) * n);
  std::span<std::int64_t> counter = region.allocate<std::int64_t>(kCacheLine / sizeof(std::int64_t));

  auto rowof = [n](std::span<double> arr, std::size_t rr) { return arr.subspan(rr * n, n); };

  linalg::copy(b, rowof(r, 1));
  linalg::copy(b, rowof(p, 1));
  linalg::zero(rowof(z, 1));
  double rho = linalg::dot(std::span<const double>(rowof(r, 1)), std::span<const double>(rowof(r, 1)));

  CgCcNativeResult out;
  for (std::size_t i = 1; i <= iters; ++i) {
    // The entire runtime durability cost: one cache line flushed per iteration.
    counter[0] = static_cast<std::int64_t>(i);
    region.persist(counter.data(), sizeof(std::int64_t));
    ++out.counter_flushes;

    a.spmv(rowof(p, i), rowof(q, i));
    const double pq =
        linalg::dot(std::span<const double>(rowof(p, i)), std::span<const double>(rowof(q, i)));
    ADCC_CHECK(pq > 0, "A is not positive definite along p");
    const double alpha = rho / pq;
    linalg::xpay(rowof(z, i), alpha, rowof(p, i), rowof(z, i + 1));
    linalg::xpay(rowof(r, i), -alpha, rowof(q, i), rowof(r, i + 1));
    const double rho_new =
        linalg::dot(std::span<const double>(rowof(r, i + 1)), std::span<const double>(rowof(r, i + 1)));
    const double beta = rho_new / rho;
    rho = rho_new;
    linalg::xpay(rowof(r, i + 1), beta, rowof(p, i), rowof(p, i + 1));
  }

  auto zlast = rowof(z, iters + 1);
  out.cg.x.assign(zlast.begin(), zlast.end());
  out.cg.iters = iters;
  out.cg.residual_norm = true_residual(a, b, out.cg.x);
  return out;
}

}  // namespace adcc::cg
