#include "cg/cg_shard.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "kernels/backend.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

namespace {

/// Sequential dot product: the reduction order must not depend on the OpenMP
/// thread count, or per-shard checkpoint images would differ across runs.
double seq_dot(std::span<const double> x, std::span<const double> y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

class CgShardPart final : public core::ShardPart {
 public:
  CgShardPart(const CgShardPlan& plan, std::size_t index, std::size_t count,
              core::FaultSurface& fault)
      : plan_(plan), fault_(fault), index_(index), count_(count) {
    const std::size_t n = plan_.matrix().rows();
    r0_ = n * index / count;
    r1_ = n * (index + 1) / count;
    p_.resize(len());
    r_.resize(len());
    z_.resize(len());
    q_.resize(len());
    p_full_.resize(n);
    nnz_ = plan_.matrix().row_ptr()[r1_] - plan_.matrix().row_ptr()[r0_];
  }

  void prepare(checkpoint::CheckpointSet* ckpt) override {
    init();
    if (ckpt != nullptr) {
      ckpt->add("p", std::span<double>(p_));
      ckpt->add("r", std::span<double>(r_));
      ckpt->add("z", std::span<double>(z_));
      ckpt->add("scalars", &scalars_, sizeof(scalars_));
    }
  }

  // Tick-before-mutate: every phase announces its whole access estimate up
  // front, so a mid-phase trigger always interrupts at a phase boundary.
  void compute(std::size_t unit, std::size_t phase, core::ShardExchange& ex) override {
    switch (phase) {
      case 0: {  // Halo publish.
        fault_.tick(len() + 1);
        ex.publish(unit, "p", index_, p_);
        break;
      }
      case 1: {  // Local SpMV over the assembled direction + partial p.q.
        fault_.tick(nnz_ + 2 * len());
        assemble_p(unit, ex);
        // Rows are independent and each row's sum is sequential, so the
        // result — and the checkpoint image — is backend/thread invariant.
        core::active_kernel_backend().spmv_rows(plan_.matrix(), r0_, r1_, p_full_, q_);
        ex.publish(unit, "pq", index_, {seq_dot(p_, q_)});
        break;
      }
      case 2: {  // alpha update + partial r.r.
        fault_.tick(4 * len());
        double pq = 0.0;
        for (std::size_t j = 0; j < count_; ++j) pq += ex.fetch(unit, "pq", j)[0];
        const double alpha = rho_ / pq;
        for (std::size_t i = 0; i < len(); ++i) {
          z_[i] += alpha * p_[i];
          r_[i] -= alpha * q_[i];
        }
        ex.publish(unit, "rr", index_, {seq_dot(r_, r_)});
        break;
      }
      case 3: {  // beta update: new search direction, advance rho.
        fault_.tick(2 * len());
        double rr = 0.0;
        for (std::size_t j = 0; j < count_; ++j) rr += ex.fetch(unit, "rr", j)[0];
        const double beta = rr / rho_;
        for (std::size_t i = 0; i < len(); ++i) p_[i] = r_[i] + beta * p_[i];
        rho_ = rr;
        break;
      }
      default:
        ADCC_CHECK(false, "cg shard units have four phases");
    }
  }

  void on_save(std::size_t unit) override { scalars_ = {rho_, unit}; }

  void clobber() override {
    std::fill(p_.begin(), p_.end(), 0.0);
    std::fill(r_.begin(), r_.end(), 0.0);
    std::fill(z_.begin(), z_.end(), 0.0);
    std::fill(q_.begin(), q_.end(), 0.0);
    std::fill(p_full_.begin(), p_full_.end(), 0.0);
    rho_ = 0.0;
    scalars_ = {};
  }

  void restored(std::size_t units_done) override {
    if (units_done == 0) {
      init();
      return;
    }
    // The checkpoint load rewrote p/r/z/scalars; q and the halo are scratch
    // the replay of the next unit recomputes.
    ADCC_CHECK(scalars_.unit == units_done,
               "cg shard checkpoint does not match the committed global epoch");
    rho_ = scalars_.rho;
  }

  std::span<const double> z_block() const { return z_; }
  std::size_t row_begin() const { return r0_; }

 private:
  std::size_t len() const { return r1_ - r0_; }

  void init() {
    const std::span<const double> b = plan_.rhs();
    for (std::size_t i = 0; i < len(); ++i) {
      p_[i] = b[r0_ + i];
      r_[i] = b[r0_ + i];
    }
    std::fill(z_.begin(), z_.end(), 0.0);
    std::fill(q_.begin(), q_.end(), 0.0);
    // rho0 = b.b over the FULL vector, summed sequentially: a replicated
    // scalar every shard derives identically.
    rho_ = seq_dot(b, b);
    scalars_ = {rho_, 0};
  }

  void assemble_p(std::size_t unit, core::ShardExchange& ex) {
    const std::size_t n = plan_.matrix().rows();
    for (std::size_t j = 0; j < count_; ++j) {
      const std::span<const double> blk = ex.fetch(unit, "p", j);
      std::copy(blk.begin(), blk.end(), p_full_.begin() + static_cast<std::ptrdiff_t>(n * j / count_));
    }
  }

  const CgShardPlan& plan_;
  core::FaultSurface& fault_;
  std::size_t index_, count_;
  std::size_t r0_ = 0, r1_ = 0;
  std::size_t nnz_ = 0;

  std::vector<double> p_, r_, z_;  ///< Owned block state (checkpointed).
  std::vector<double> q_, p_full_; ///< Volatile per-unit scratch.
  double rho_ = 0.0;
  struct Scalars {
    double rho = 0.0;
    std::uint64_t unit = 0;
  };
  Scalars scalars_;  ///< Durable mirror written by on_save.
};

}  // namespace

CgShardPlan::CgShardPlan(const CgWorkloadConfig& cfg)
    : cfg_(cfg),
      a_(linalg::make_spd(cfg.n, cfg.nz_per_row, cfg.matrix_seed)),
      b_(linalg::make_rhs(cfg.n, cfg.rhs_seed)) {}

std::unique_ptr<core::ShardPart> CgShardPlan::make_part(std::size_t index, std::size_t count,
                                                        core::FaultSurface& fault) {
  return std::make_unique<CgShardPart>(*this, index, count, fault);
}

bool CgShardPlan::verify(const std::vector<core::ShardPart*>& parts) {
  std::vector<double> x(a_.rows(), 0.0);
  for (core::ShardPart* p : parts) {
    auto* part = static_cast<CgShardPart*>(p);
    const std::span<const double> blk = part->z_block();
    std::copy(blk.begin(), blk.end(),
              x.begin() + static_cast<std::ptrdiff_t>(part->row_begin()));
  }
  if (!reference_) reference_ = cg_solve(a_, b_, cfg_.iters);
  const double err = linalg::max_abs_diff(x, reference_->x);
  double scale = 1.0;
  for (const double v : reference_->x) scale = std::max(scale, std::fabs(v));
  return err <= cfg_.verify_rel_tol * scale;
}

void CgShardPlan::tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const {
  // Per-shard slots hold the three owned block vectors; the same sizing also
  // hosts the coordinator's tiny marker on the main env.
  const std::size_t block = (cfg_.n + count - 1) / count;
  env.slot_bytes = 3 * block * sizeof(double) + (1u << 20);
  env.arena_bytes = core::durability_kind(mode) == core::DurabilityKind::kCheckpoint
                        ? 2 * env.slot_bytes + (8u << 20)
                        : (1u << 20);
}

}  // namespace adcc::cg
