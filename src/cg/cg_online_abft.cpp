#include "cg/cg_online_abft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

namespace {

bool residual_invariant_holds(const linalg::CsrMatrix& a, std::span<const double> b,
                              const CgState& s, double rel_tol, std::vector<double>& scratch) {
  a.spmv(s.z, scratch);
  double err2 = 0.0;
  double b2 = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = s.r[i] - (b[i] - scratch[i]);
    err2 += d * d;
    b2 += b[i] * b[i];
  }
  return std::sqrt(err2) <= rel_tol * std::sqrt(b2);
}

}  // namespace

OnlineAbftResult run_cg_online_abft(const linalg::CsrMatrix& a, std::span<const double> b,
                                    std::size_t iters, const OnlineAbftConfig& cfg,
                                    const FaultInjector& inject) {
  ADCC_CHECK(cfg.check_every >= 1, "check interval must be positive");
  OnlineAbftResult out;
  CgState s;
  cg_init(a, b, s);
  CgState verified = s;  // Last state known to satisfy the invariant.
  std::vector<double> scratch(a.rows());

  std::size_t retries_at_checkpoint = 0;
  while (s.iter < iters) {
    cg_step(a, s);
    if (inject) inject(s.iter, s);

    const bool boundary = s.iter % cfg.check_every == 0 || s.iter == iters;
    if (!boundary) continue;

    ++out.checks;
    if (residual_invariant_holds(a, b, s, cfg.rel_tol, scratch)) {
      verified = s;
      retries_at_checkpoint = 0;
      continue;
    }
    ++out.detections;
    ++out.rollbacks;
    ++retries_at_checkpoint;
    ADCC_CHECK(retries_at_checkpoint <= cfg.max_retries,
               "persistent invariant violation: soft error not recoverable by rollback");
    out.wasted_iterations += s.iter - verified.iter;
    s = verified;  // Online-ABFT rollback: re-execute from the verified state.
  }

  out.cg.x = std::move(s.z);
  out.cg.iters = iters;
  out.cg.residual_norm = true_residual(a, b, out.cg.x);
  return out;
}

}  // namespace adcc::cg
