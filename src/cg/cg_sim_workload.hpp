// CgCrashConsistent as a core::Workload — the memsim-backed twin of
// cg::CgWorkload, registered as "cg-sim".
//
// The adapter runs the algorithm-directed CG under the crash emulator
// (set-associative LRU cache + durable NVM images), so crashes land exactly
// where the paper's PIN tool puts them: arm `--crash=point:cg:p_updated:K`
// (Fig. 2 line 10 of iteration K, the Fig. 3 experiment) or any access/fuzz
// plan, and recovery costs reflect what the *cache* kept, not what host DRAM
// kept. The durability scheme is always the algorithm-directed one — the mode
// axis only sizes the (unused) substrate, so the adapter is mode-agnostic and
// excluded from `adccbench --matrix`.
#pragma once

#include <memory>
#include <optional>

#include "cg/cg.hpp"
#include "cg/cg_cc.hpp"
#include "common/options.hpp"
#include "core/registry.hpp"
#include "core/sim_workload.hpp"

namespace adcc::cg {

struct CgSimWorkloadConfig {
  std::size_t n = 2000;             ///< System rows (~class S-W scale).
  std::size_t nz_per_row = 15;
  std::size_t iters = 15;           ///< Paper's fixed trip count.
  std::uint64_t matrix_seed = 42;
  std::uint64_t rhs_seed = 43;
  std::size_t cache_bytes = 8u << 20;  ///< Simulated LLC (Xeon E5606-like).
  std::size_t cache_ways = 16;
  double invariant_rel_tol = 1e-6;
  double verify_rel_tol = 1e-8;
};

/// Builds the config from CLI options (--n, --nz, --iters, --cache_mb, --quick).
CgSimWorkloadConfig cg_sim_workload_config(const Options& opts);

class CgSimWorkload final : public core::SimWorkloadBase {
 public:
  explicit CgSimWorkload(const CgSimWorkloadConfig& cfg);

  std::string name() const override { return "cg-sim"; }
  std::size_t work_units() const override { return cfg_.iters; }
  std::size_t units_done() const override { return cc_ ? cc_->completed_iters() : 0; }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override {}  ///< The Fig. 2 line-3 flush is inside the iteration.
  core::WorkloadRecovery recover() override;
  bool verify() override;

  /// The live simulated run (valid after prepare); figure benches read the
  /// per-unit normalizers (avg_iter_seconds) and simulator statistics off it.
  CgCrashConsistent& cc() { return *cc_; }

  const linalg::CsrMatrix& matrix() const { return a_; }

 private:
  memsim::MemorySimulator& sim() override { return cc_->sim(); }

  CgSimWorkloadConfig cfg_;
  linalg::CsrMatrix a_;
  std::vector<double> b_;
  std::optional<CgResult> reference_;

  std::unique_ptr<CgCrashConsistent> cc_;
};

}  // namespace adcc::cg
