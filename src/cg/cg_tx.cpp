#include "cg/cg_tx.hpp"

#include "common/align.hpp"
#include "common/check.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

std::size_t cg_tx_data_bytes(std::size_t n) {
  return round_up(4 * n * sizeof(double), kCacheLine) + 16 * kCacheLine;
}

std::size_t cg_tx_log_bytes(std::size_t n) {
  // Three snapshotted vectors, plus per-4KB-chunk headers/padding (~2 %),
  // plus slack for the scalar entries.
  const std::size_t payload = 3 * n * sizeof(double);
  return round_up(payload + payload / 32, kCacheLine) + 128 * kCacheLine;
}

CgTxResult run_cg_tx(const linalg::CsrMatrix& a, std::span<const double> b, std::size_t iters,
                     pmemtx::PersistentHeap& heap) {
  const std::size_t n = a.rows();
  ADCC_CHECK(b.size() == n, "rhs size mismatch");

  // Persistent restart vectors.
  std::span<double> p = heap.allocate<double>(n);
  std::span<double> r = heap.allocate<double>(n);
  std::span<double> z = heap.allocate<double>(n);
  std::span<double> scalars = heap.allocate<double>(2);  // rho, iter
  // q is reconstructible (q = A·p): volatile, as the paper checkpoints 3 arrays.
  std::vector<double> q(n);

  linalg::copy(b, p);
  linalg::copy(b, r);
  linalg::zero(z);
  double rho = linalg::dot(r, r);
  scalars[0] = rho;
  scalars[1] = 0.0;
  heap.region().persist(p.data(), p.size_bytes());
  heap.region().persist(r.data(), r.size_bytes());
  heap.region().persist(z.data(), z.size_bytes());
  heap.region().persist(scalars.data(), scalars.size_bytes());

  pmemtx::UndoLog log(heap);
  for (std::size_t i = 0; i < iters; ++i) {
    pmemtx::Transaction tx(log);
    tx.add(p);
    tx.add(r);
    tx.add(z);
    tx.add(scalars);

    a.spmv(p, q);
    const double pq = linalg::dot(std::span<const double>(p), std::span<const double>(q));
    ADCC_CHECK(pq > 0, "A is not positive definite along p");
    const double alpha = rho / pq;
    linalg::axpy(alpha, p, z);
    linalg::axpy(-alpha, q, r);
    const double rho_new = linalg::dot(std::span<const double>(r), std::span<const double>(r));
    const double beta = rho_new / rho;
    rho = rho_new;
    linalg::xpay(std::span<const double>(r), beta, std::span<const double>(p), p);
    scalars[0] = rho;
    scalars[1] = static_cast<double>(i + 1);

    tx.commit();
  }

  CgTxResult out;
  out.cg.x.assign(z.begin(), z.end());
  out.cg.iters = iters;
  out.cg.residual_norm = true_residual(a, b, out.cg.x);
  out.log_stats = log.stats();
  return out;
}

}  // namespace adcc::cg
