#include "cg/cg_sim_workload.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {

CgSimWorkloadConfig cg_sim_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  CgSimWorkloadConfig cfg;
  cfg.n = opts.get_size("n", quick ? 600 : 2000);
  cfg.nz_per_row = opts.get_size("nz", quick ? 9 : 15);
  cfg.iters = opts.get_size("iters", quick ? 8 : 15);
  cfg.matrix_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  cfg.cache_bytes = opts.get_size("cache_mb", quick ? 1 : 8) << 20;
  return cfg;
}

CgSimWorkload::CgSimWorkload(const CgSimWorkloadConfig& cfg)
    : cfg_(cfg),
      a_(linalg::make_spd(cfg.n, cfg.nz_per_row, cfg.matrix_seed)),
      b_(linalg::make_rhs(cfg.n, cfg.rhs_seed)) {
  ADCC_CHECK(cfg_.iters >= 1, "CG sim workload needs at least one iteration");
}

void CgSimWorkload::prepare(core::ModeEnv& env) {
  (void)env;  // Mode-agnostic: the simulated scheme is algorithm-directed.
  CgCcConfig cc;
  cc.n_iters = cfg_.iters;
  cc.cache.size_bytes = cfg_.cache_bytes;
  cc.cache.ways = cfg_.cache_ways;
  cc.invariant_rel_tol = cfg_.invariant_rel_tol;
  cc_ = std::make_unique<CgCrashConsistent>(a_, b_, cc);
  bind_sim(cc_->sim());
}

bool CgSimWorkload::run_step() { return cc_->step(); }

core::WorkloadRecovery CgSimWorkload::recover() {
  Timer timer;
  const CgRecovery rec = cc_->begin_recovery();
  core::WorkloadRecovery out;
  out.restart_unit = rec.restart_iter;
  out.units_lost = crashed_done_ + 1 - rec.restart_iter;
  out.candidates_checked = rec.candidates_checked;
  // Everything past the invariant scan (NVM reload, state rebuild) is resume
  // work in the paper's split.
  out.repair_seconds = std::max(0.0, timer.elapsed() - rec.detect_seconds);
  return out;
}

bool CgSimWorkload::verify() {
  ADCC_CHECK(units_done() == cfg_.iters, "verify requires a completed run");
  if (!reference_) reference_ = cg_solve(a_, b_, cfg_.iters);
  const std::vector<double> x = cc_->solution();
  const double err = linalg::max_abs_diff(x, reference_->x);
  double scale = 1.0;
  for (const double v : reference_->x) scale = std::max(scale, std::fabs(v));
  return err <= cfg_.verify_rel_tol * scale;
}

ADCC_REGISTER_WORKLOAD(
    "cg-sim", "CG under the memsim crash emulator (Fig. 3; mode-agnostic)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      return std::make_unique<CgSimWorkload>(cg_sim_workload_config(opts));
    });

}  // namespace adcc::cg
