// Ablation (paper §III-D claim) — XSBench runtime overhead vs tally-flush
// frequency: flushing every iteration cost the paper ~16 %; every 0.01 % of
// lookups was free. This sweep regenerates the trade-off curve.
//
// Since the sweep-engine port this is a thin SweepSpec declaration over the mc
// workload — equivalent to
//
//   adccbench --workload=mc --sweep=mode=alg-nvm,interval=1+4+16+64+256+1024+8192
//
// The `overhead` column against the shared native baseline is the paper's
// curve (cells differing only in mode/crash share one baseline run). As with
// every deck, --mode=all / --crash widen the grid for free.
//
// Flags: --lookups=1000000 --nuclides=24 --gridpoints=500
//        --intervals=1+4+16+64+256+1024+8192 --mode=alg-nvm --reps=3 --quick
//        (--intervals also accepts the legacy comma-separated spelling)
#include <algorithm>
#include <cstdio>

#include "common/options.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) try {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("lookups", "total XS lookups (suffixes: K/M/G)", "1000000 (quick: 200000)")
      .doc("nuclides", "nuclide count", "24")
      .doc("gridpoints", "gridpoints per nuclide", "500")
      .doc("intervals", "tally-flush intervals to sweep (lookups per flush)",
           "1+4+16+64+256+1024+8192")
      .doc("mode", "durability mode(s) for the deck, or 'all'", "alg-nvm")
      .doc("crash", "crash plan for every cell", "none")
      .doc("reps", "timed repetitions per cell (median reported)", "3 (quick: 1)")
      .doc("sweep_jobs", "worker threads executing deck cells", "1")
      .doc("format", "table output: table | csv | json", "table")
      .doc("no_timing", "blank wall-clock columns", "off")
      .doc("quick", "CI-sized problem defaults", "off");
  if (opts.maybe_print_help("ablation_xs_flushfreq")) return 0;
  const bool quick = opts.get_bool("quick");
  const auto format = core::parse_table_format(opts.get("format", "table"));
  if (!format) {
    std::fprintf(stderr, "ablation_xs_flushfreq: bad --format\n");
    return 2;
  }

  if (!opts.has("lookups")) opts.set("lookups", quick ? "200000" : "1000000");
  if (!opts.has("nuclides")) opts.set("nuclides", "24");
  if (!opts.has("gridpoints")) opts.set("gridpoints", "500");
  if (!opts.has("reps")) opts.set("reps", quick ? "1" : "3");
  if (!opts.has("seed")) opts.set("seed", "5");

  std::string intervals =
      opts.get("intervals", quick ? "1+64+1024" : "1+4+16+64+256+1024+8192");
  std::replace(intervals.begin(), intervals.end(), ',', '+');  // Legacy spelling.

  std::string error;
  const auto spec = core::parse_sweep("workload=mc,mode=" + opts.get("mode", "alg-nvm") +
                                          ",interval=" + intervals +
                                          ",crash=" + opts.get("crash", "none"),
                                      &error);
  if (!spec) {
    std::fprintf(stderr, "ablation_xs_flushfreq: %s\n", error.c_str());
    return 2;
  }

  core::SweepConfig cfg;
  cfg.base = opts;
  cfg.jobs = std::max(1, static_cast<int>(opts.get_int("sweep_jobs", 1)));
  cfg.baseline = !opts.get_bool("no_timing");  // Baselines only feed timing columns.

  if (*format == core::TableFormat::kPlain) {
    core::print_banner("Ablation", "XSBench overhead vs tally-flush interval, " +
                                       opts.get("lookups", "") + " lookups");
  }
  const core::SweepResult deck = core::run_sweep(*spec, cfg);
  deck.table(!opts.get_bool("no_timing")).print(*format);
  if (*format == core::TableFormat::kPlain) {
    std::printf("\nExpected: overhead falls as the flush interval grows. Paper: flushing\n"
                "every iteration ~16%%; every 0.01%% of lookups, ~0.05%%.\n");
  }
  return deck.all_ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ablation_xs_flushfreq: %s\n", e.what());
  return 2;
}
