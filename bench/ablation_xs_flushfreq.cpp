// Ablation (paper §III-D claim) — XSBench runtime overhead vs tally-flush
// frequency: flushing every iteration cost the paper ~16 %; every 0.01 % of
// lookups was free. This sweep regenerates the trade-off curve.
//
// Flags: --lookups=1000000 --nuclides=24 --gridpoints=500
//        --intervals=1,4,16,64,256,1024,8192 --reps=3 --quick
#include <cstdio>
#include <sstream>

#include "common/options.hpp"
#include "core/harness.hpp"
#include "core/report.hpp"
#include "mc/mc_ckpt.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  mc::XsConfig dc;
  dc.n_nuclides = static_cast<std::size_t>(opts.get_int("nuclides", 24));
  dc.gridpoints_per_nuclide = static_cast<std::size_t>(opts.get_int("gridpoints", 500));
  const auto lookups =
      static_cast<std::uint64_t>(opts.get_int("lookups", quick ? 200'000 : 1'000'000));
  std::vector<std::uint64_t> intervals;
  {
    std::stringstream ss(opts.get("intervals", quick ? "1,64,1024" : "1,4,16,64,256,1024,8192"));
    std::string tok;
    while (std::getline(ss, tok, ',')) intervals.push_back(std::stoull(tok));
  }
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 3));

  const mc::XsDataHost data(dc);
  const std::uint64_t seed = 5;
  core::print_banner("Ablation", "XSBench overhead vs tally-flush interval, " +
                                     std::to_string(lookups) + " lookups");

  const double native_s =
      core::median_seconds([&] { mc::run_xs_native(data, lookups, seed); }, reps);

  core::Table table({"flush every N lookups", "pct of lookups", "seconds", "overhead"});
  for (const std::uint64_t interval : intervals) {
    const double s = core::median_seconds(
        [&] {
          nvm::PerfModel perf(nvm::PerfConfig{.bandwidth_slowdown = 1.0, .enabled = false});
          nvm::NvmRegion region(1u << 20, perf);
          mc::run_xs_cc_native(data, lookups, seed, interval, region);
        },
        reps);
    const auto nt = core::normalize(s, native_s);
    table.add_row({std::to_string(interval),
                   core::Table::fmt(100.0 * static_cast<double>(interval) /
                                        static_cast<double>(lookups), 4) + "%",
                   core::Table::fmt(s, 4),
                   core::Table::fmt(nt.overhead_percent(), 2) + "%"});
  }
  table.print();
  std::printf("\nnative: %.4fs. Paper: flushing every iteration ~16%% overhead; every\n"
              "0.01%% of lookups, ~0.05%%.\n", native_s);
  return 0;
}
