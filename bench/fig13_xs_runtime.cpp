// Fig. 13 reproduction — XSBench runtime under the seven durability schemes,
// normalized to native; durability every 0.01 % of lookups for all schemes.
//
// Paper numbers: algorithm-directed ≤ 0.05 %, NVM-only checkpoint ≈ 0,
// NVM/DRAM checkpoint ≈ 13 %, disk checkpoint the largest by far.
//
// Methodology notes:
//  * Every scheme is timed back-to-back with its own adjacent native baseline
//    (the kernel is clock-sensitive; a single up-front baseline conflates
//    turbo/thermal drift with durability overhead). Two ScenarioRunners over
//    the same McWorkload alternate repetitions.
//  * The disk scheme issues an fdatasync per checkpoint; it runs at a reduced
//    lookup count (same checkpoint density) against its own baseline.
//  * Workload::prepare (tally zeroing, heap/arena setup) is excluded from the
//    timed region for every scheme including the adjacent native baselines
//    (the pre-port binary timed pmem-tx heap reconstruction; this port does
//    not) — only the lookup loop + durability actions are timed.
//
// Flags: --lookups=1000000 --nuclides=68 --gridpoints=2000 --interval_pct=0.01
//        --reps=2 --disk_scale=10 --quick
#include <cstdio>
#include <memory>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "mc/mc_workload.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("lookups", "total lookups", "1000000 (quick: 200000)")
      .doc("nuclides", "nuclide count", "68 (quick: 24)")
      .doc("gridpoints", "gridpoints per nuclide", "2000 (quick: 500)")
      .doc("interval_pct", "durability interval, % of lookups", "0.01")
      .doc("reps", "interleaved repetitions", "2 (quick: 1)")
      .doc("disk_scale", "lookup divisor for the disk scheme", "10")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig13_xs_runtime")) return 0;
  const bool quick = opts.get_bool("quick");
  mc::McWorkloadConfig wc;
  wc.data.n_nuclides = opts.get_size("nuclides", quick ? 24 : 68);
  wc.data.gridpoints_per_nuclide = opts.get_size("gridpoints", quick ? 500 : 2000);
  wc.lookups = opts.get_size("lookups", quick ? 200'000 : 1'000'000);
  const double interval_pct = opts.get_double("interval_pct", 0.01);
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 2));
  const auto disk_scale = static_cast<std::uint64_t>(opts.get_int("disk_scale", 10));

  wc.interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(wc.lookups) * interval_pct / 100.0));
  wc.seed = 5;

  core::print_banner("Fig. 13", "XSBench runtime, 7 schemes, " + std::to_string(wc.lookups) +
                                    " lookups, durability every " + std::to_string(wc.interval) +
                                    " lookups (" + core::Table::fmt(interval_pct, 2) + "%)");

  core::Table table({"scheme", "scheme_s", "adjacent_native_s", "normalized", "overhead"});

  // Interleaved measurement: scheme and native repetitions alternate over the
  // same workload instance, medians compared.
  auto measure = [&](const std::string& name, mc::McWorkload& workload, core::Mode mode) {
    auto scenario = [&](core::Mode m) {
      core::ScenarioConfig cfg;
      cfg.mode = m;
      cfg.env.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig13";
      workload.tune_env(m, cfg.env);
      cfg.reps = 1;
      return cfg;
    };
    core::ScenarioRunner native_runner(workload, scenario(core::Mode::kNative));
    core::ScenarioRunner scheme_runner(workload, scenario(mode));
    native_runner.run();  // Warm both caches and clocks.
    std::vector<double> scheme_t, native_t;
    for (int r = 0; r < reps; ++r) {
      native_t.push_back(native_runner.run().seconds);
      scheme_t.push_back(scheme_runner.run().seconds);
    }
    const double s = median(scheme_t);
    const double nat = median(native_t);
    const auto nt = core::normalize(s, nat);
    table.add_row({name, core::Table::fmt(s, 4), core::Table::fmt(nat, 4),
                   core::Table::fmt(nt.normalized, 4),
                   core::Table::fmt(nt.overhead_percent(), 2) + "%"});
  };

  mc::McWorkload workload(wc);

  {
    // Disk: reduced lookup count at the same checkpoint density.
    mc::McWorkloadConfig dc = wc;
    dc.lookups = std::max<std::uint64_t>(wc.interval, wc.lookups / disk_scale);
    mc::McWorkload disk_workload(dc);
    measure("ckpt-disk (scaled)", disk_workload, core::Mode::kCkptDisk);
  }

  for (core::Mode m : {core::Mode::kCkptNvm, core::Mode::kCkptHetero, core::Mode::kPmemTx,
                       core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
    measure(core::mode_name(m), workload, m);
  }

  table.print();
  std::printf("\nPaper reference: algorithm-directed <= 0.05%%; NVM-only checkpoint ~0%%;\n"
              "NVM/DRAM checkpoint ~13%%; disk checkpoint by far the largest.\n");
  return 0;
}
