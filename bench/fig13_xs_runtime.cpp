// Fig. 13 reproduction — XSBench runtime under the seven durability schemes,
// normalized to native; durability every 0.01 % of lookups for all schemes.
//
// Paper numbers: algorithm-directed ≤ 0.05 %, NVM-only checkpoint ≈ 0,
// NVM/DRAM checkpoint ≈ 13 %, disk checkpoint the largest by far.
//
// Methodology notes:
//  * Every scheme is timed back-to-back with its own adjacent native baseline
//    (the kernel is clock-sensitive; a single up-front baseline conflates
//    turbo/thermal drift with durability overhead).
//  * The disk scheme issues an fdatasync per checkpoint; it runs at a reduced
//    lookup count (same checkpoint density) against its own baseline.
//
// Flags: --lookups=1000000 --nuclides=68 --gridpoints=2000 --interval_pct=0.01
//        --reps=2 --disk_scale=10 --quick
#include <cstdio>
#include <functional>

#include "common/options.hpp"
#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/report.hpp"
#include "mc/mc_ckpt.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  mc::XsConfig dc;
  dc.n_nuclides = static_cast<std::size_t>(opts.get_int("nuclides", quick ? 24 : 68));
  dc.gridpoints_per_nuclide =
      static_cast<std::size_t>(opts.get_int("gridpoints", quick ? 500 : 2000));
  const auto lookups =
      static_cast<std::uint64_t>(opts.get_int("lookups", quick ? 200'000 : 1'000'000));
  const double interval_pct = opts.get_double("interval_pct", 0.01);
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 2));
  const auto disk_scale = static_cast<std::uint64_t>(opts.get_int("disk_scale", 10));

  const std::uint64_t interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(lookups) * interval_pct / 100.0));
  const mc::XsDataHost data(dc);
  const std::uint64_t seed = 5;

  core::print_banner("Fig. 13", "XSBench runtime, 7 schemes, " + std::to_string(lookups) +
                                    " lookups, durability every " + std::to_string(interval) +
                                    " lookups (" + core::Table::fmt(interval_pct, 2) + "%)");

  core::Table table({"scheme", "scheme_s", "adjacent_native_s", "normalized", "overhead"});

  // Interleaved measurement: scheme and native alternate, medians compared.
  auto measure = [&](const std::string& name, std::uint64_t run_lookups,
                     const std::function<void()>& scheme_fn) {
    std::vector<double> scheme_t, native_t;
    mc::run_xs_native(data, run_lookups, seed);  // Warm both caches and clocks.
    for (int r = 0; r < reps; ++r) {
      native_t.push_back(
          core::time_seconds([&] { mc::run_xs_native(data, run_lookups, seed); }));
      scheme_t.push_back(core::time_seconds(scheme_fn));
    }
    const double s = median(scheme_t);
    const double nat = median(native_t);
    const auto nt = core::normalize(s, nat);
    table.add_row({name, core::Table::fmt(s, 4), core::Table::fmt(nat, 4),
                   core::Table::fmt(nt.normalized, 4),
                   core::Table::fmt(nt.overhead_percent(), 2) + "%"});
  };

  core::ModeEnvConfig ec;
  ec.arena_bytes = 4u << 20;
  ec.slot_bytes = 1u << 10;
  ec.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig13";

  {
    const std::uint64_t dl = std::max<std::uint64_t>(interval, lookups / disk_scale);
    core::ModeEnv env = core::make_env(core::Mode::kCkptDisk, ec);
    measure("ckpt-disk (scaled)", dl,
            [&] { mc::run_xs_checkpointed(data, dl, seed, interval, *env.backend); });
  }

  for (core::Mode m : {core::Mode::kCkptNvm, core::Mode::kCkptHetero}) {
    core::ModeEnv env = core::make_env(m, ec);
    measure(core::mode_name(m), lookups,
            [&] { mc::run_xs_checkpointed(data, lookups, seed, interval, *env.backend); });
  }

  {
    nvm::PerfModel perf(nvm::PerfConfig{.bandwidth_slowdown = 1.0, .enabled = false});
    auto heap = std::make_unique<pmemtx::PersistentHeap>(mc::xs_tx_data_bytes(),
                                                         mc::xs_tx_log_bytes(), perf);
    measure("pmem-tx", lookups, [&] {
      heap = std::make_unique<pmemtx::PersistentHeap>(mc::xs_tx_data_bytes(),
                                                      mc::xs_tx_log_bytes(), perf);
      mc::run_xs_tx(data, lookups, seed, interval, *heap);
    });
  }

  for (core::Mode m : {core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
    core::ModeEnv env = core::make_env(m, ec);
    measure(core::mode_name(m), lookups, [&] {
      env.region->reset();
      mc::run_xs_cc_native(data, lookups, seed, interval, *env.region);
    });
  }

  table.print();
  std::printf("\nPaper reference: algorithm-directed <= 0.05%%; NVM-only checkpoint ~0%%;\n"
              "NVM/DRAM checkpoint ~13%%; disk checkpoint by far the largest.\n");
  return 0;
}
