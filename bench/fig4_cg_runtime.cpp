// Fig. 4 reproduction — CG runtime under the seven durability schemes,
// normalized to native execution.
//
// Paper setup: NPB CG class C, checkpoint / transaction / counter-flush at the
// end of every iteration (all schemes bound recomputation to one iteration).
// Paper numbers: disk checkpoint +60.4 %, NVM-only checkpoint +4.2 %,
// NVM/DRAM checkpoint +43.6 %, PMEM +329 %, algorithm-directed < 3 %.
//
// CG runs on the serial kernel backend by default: the paper's
// compute/durability balance comes from a 2.13 GHz 2009 Xeon, and a 24-core
// SpMV would make every fixed durability cost look relatively larger. Pass
// --backend=omp --threads=N (needs -DADCC_OPENMP=ON) for parallel kernels.
// Substrate setup (arenas, backends) is excluded from the timed region.
//
// Ported to the ScenarioRunner: the per-scheme driver code is now the mode
// table below; CgWorkload supplies all seven engines. Methodology note vs the
// pre-port binary: Workload::prepare (state init — cg_init, heap construction,
// history-array setup) is excluded from the timed region for *every* scheme,
// including the native baseline, so only the iteration loop + durability +
// recovery are timed. Ratios stay apples-to-apples; absolute seconds are
// slightly lower than the old binary's.
#include <cstdio>

#include "cg/cg_workload.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "kernels/backend.hpp"
#include "kernels/threads.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("n", "system rows", "150000 (quick: 14000)")
      .doc("nz", "nonzeros per row", "15")
      .doc("iters", "CG iterations", "15")
      .doc("reps", "timed repetitions", "3 (quick: 1)")
      .doc("disk_mbps", "ckpt-disk throttle, MB/s", "150")
      .doc("threads", "kernel threads for --backend=omp (0 = ambient)", "1")
      .doc("backend", "kernel backend (serial|omp, omp needs -DADCC_OPENMP=ON)", "serial")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig4_cg_runtime")) return 0;
  const bool quick = opts.get_bool("quick");
  cg::CgWorkloadConfig wc;
  wc.n = opts.get_size("n", quick ? 14000 : 150000);
  wc.nz_per_row = opts.get_size("nz", 15);
  wc.iters = opts.get_size("iters", 15);
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 3));
  const double disk_mbps = opts.get_double("disk_mbps", 150.0);
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  const core::ScopedOmpThreads thread_scope(threads);
  const core::KernelBackend& backend = core::kernel_backend(opts.get("backend", "serial"));

  cg::CgWorkload workload(wc);

  core::print_banner("Fig. 4", "CG runtime, 7 schemes, n=" + std::to_string(wc.n) +
                                   ", per-iteration durability, normalized to native");

  core::ScenarioConfig base;
  base.env.disk_throttle_bytes_per_s = disk_mbps * 1e6;
  base.env.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig4";
  base.reps = reps;
  base.backend = &backend;

  auto scenario = [&](core::Mode m, int mode_reps, bool warmup) {
    core::ScenarioConfig cfg = base;
    cfg.mode = m;
    cfg.reps = mode_reps;
    cfg.warmup = warmup;
    workload.tune_env(m, cfg.env);
    return cfg;
  };

  core::ScenarioConfig native_cfg = scenario(core::Mode::kNative, reps, /*warmup=*/true);
  const double native_s = core::run_scenario(workload, native_cfg).seconds;

  core::Table table({"scheme", "seconds", "normalized", "overhead"});
  table.add_row({"native", core::Table::fmt(native_s, 4), "1.000", "0.0%"});
  auto report = [&](core::Mode m, const core::ScenarioResult& res) {
    const auto nt = core::normalize(res.seconds, native_s);
    table.add_row({core::mode_name(m), core::Table::fmt(res.seconds, 4),
                   core::Table::fmt(nt.normalized, 3),
                   core::Table::fmt(nt.overhead_percent(), 1) + "%"});
  };

  for (core::Mode m : {core::Mode::kCkptDisk, core::Mode::kCkptNvm, core::Mode::kCkptHetero,
                       core::Mode::kPmemTx, core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
    // The disk scheme runs once, unwarmed, as in the paper's methodology.
    const bool disk = m == core::Mode::kCkptDisk;
    const bool warmup = core::is_checkpoint_mode(m) && !disk;
    core::ScenarioConfig cfg = scenario(m, disk ? 1 : reps, warmup);
    report(m, core::run_scenario(workload, cfg));
  }

  table.print();
  std::printf("\nPaper reference (class C): ckpt-disk +60.4%%, ckpt-nvm +4.2%%,"
              " ckpt-nvm/dram +43.6%%, pmem-tx +329%%, algorithm-directed < 3%%.\n");
  return 0;
}
