// Fig. 4 reproduction — CG runtime under the seven durability schemes,
// normalized to native execution.
//
// Paper setup: NPB CG class C, checkpoint / transaction / counter-flush at the
// end of every iteration (all schemes bound recomputation to one iteration).
// Paper numbers: disk checkpoint +60.4 %, NVM-only checkpoint +4.2 %,
// NVM/DRAM checkpoint +43.6 %, PMEM +329 %, algorithm-directed < 3 %.
//
// CG runs single-threaded by default: the paper's compute/durability balance
// comes from a 2.13 GHz 2009 Xeon, and a 24-core SpMV would make every fixed
// durability cost look relatively larger. Pass --threads=0 to use all cores.
// Substrate setup (arenas, backends) is excluded from the timed region.
//
// Flags: --n=150000 --nz=15 --iters=15 --reps=3 --disk_mbps=150 --threads=1
//        --quick (n=14000, reps=1)
#include <omp.h>

#include <cstdio>

#include "cg/cg_cc.hpp"
#include "cg/cg_ckpt.hpp"
#include "cg/cg_tx.hpp"
#include "common/options.hpp"
#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/report.hpp"
#include "linalg/spgen.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", quick ? 14000 : 150000));
  const std::size_t nz = static_cast<std::size_t>(opts.get_int("nz", 15));
  const std::size_t iters = static_cast<std::size_t>(opts.get_int("iters", 15));
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 3));
  const double disk_mbps = opts.get_double("disk_mbps", 150.0);
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  if (threads > 0) omp_set_num_threads(threads);

  const auto a = linalg::make_spd(n, nz, 42);
  const auto b = linalg::make_rhs(n, 43);

  core::print_banner("Fig. 4", "CG runtime, 7 schemes, n=" + std::to_string(n) +
                                   ", per-iteration durability, normalized to native");

  core::ModeEnvConfig ec;
  ec.arena_bytes = (iters + 4) * n * sizeof(double) * 4 + (8u << 20);
  ec.slot_bytes = 4 * n * sizeof(double) + (1u << 20);
  ec.disk_throttle_bytes_per_s = disk_mbps * 1e6;
  ec.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig4";

  const double native_s = core::median_seconds([&] { cg::cg_solve(a, b, iters); }, reps);

  core::Table table({"scheme", "seconds", "normalized", "overhead"});
  table.add_row({"native", core::Table::fmt(native_s, 4), "1.000", "0.0%"});
  auto report = [&](core::Mode m, double seconds) {
    const auto nt = core::normalize(seconds, native_s);
    table.add_row({core::mode_name(m), core::Table::fmt(seconds, 4),
                   core::Table::fmt(nt.normalized, 3),
                   core::Table::fmt(nt.overhead_percent(), 1) + "%"});
  };

  for (core::Mode m : {core::Mode::kCkptDisk, core::Mode::kCkptNvm, core::Mode::kCkptHetero}) {
    core::ModeEnv env = core::make_env(m, ec);  // Setup excluded from timing.
    const double s = core::median_seconds(
        [&] { cg::run_cg_checkpointed(a, b, iters, *env.backend); },
        m == core::Mode::kCkptDisk ? 1 : reps, /*warmup=*/m != core::Mode::kCkptDisk);
    report(m, s);
  }

  {
    nvm::PerfModel perf(nvm::PerfConfig{.bandwidth_slowdown = 1.0, .enabled = false});
    std::vector<double> times;
    for (int r = 0; r < reps; ++r) {
      pmemtx::PersistentHeap heap(cg::cg_tx_data_bytes(n), cg::cg_tx_log_bytes(n), perf);
      times.push_back(core::time_seconds([&] { cg::run_cg_tx(a, b, iters, heap); }));
    }
    report(core::Mode::kPmemTx, median(std::move(times)));
  }

  for (core::Mode m : {core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
    core::ModeEnv env = core::make_env(m, ec);
    std::vector<double> times;
    for (int r = 0; r < reps; ++r) {
      env.region->reset();  // Reuse the arena; allocation cost excluded.
      times.push_back(
          core::time_seconds([&] { cg::run_cg_cc_native(a, b, iters, *env.region); }));
    }
    report(m, median(std::move(times)));
  }

  table.print();
  std::printf("\nPaper reference (class C): ckpt-disk +60.4%%, ckpt-nvm +4.2%%,"
              " ckpt-nvm/dram +43.6%%, pmem-tx +329%%, algorithm-directed < 3%%.\n");
  return 0;
}
