// Microbenchmarks (google-benchmark) for the persistence primitives: native
// flush, NVM-throttled persists, checkpoint copies, DRAM-cache staging, and
// undo-log snapshots. These are the constants behind Figs. 4/8/13.
#include <benchmark/benchmark.h>

#include "checkpoint/nvm_backend.hpp"
#include "common/align.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/epoch.hpp"
#include "nvm/flush.hpp"
#include "nvm/nvm_region.hpp"
#include "pmemtx/tx.hpp"

namespace {

using namespace adcc;

nvm::PerfModel& fast_model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

nvm::PerfModel& slow_model() {
  static nvm::PerfModel m(nvm::PerfConfig{.bandwidth_slowdown = 8.0});
  return m;
}

void BM_FlushRange(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  AlignedBuffer buf(bytes);
  for (auto _ : state) {
    nvm::flush_range(buf.data(), bytes);
    nvm::store_fence();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FlushRange)->Range(64, 1 << 20);

void BM_PersistNvmFast(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region(bytes + (1u << 16), fast_model());
  auto span = region.allocate<std::byte>(bytes);
  for (auto _ : state) region.persist(span.data(), bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PersistNvmFast)->Range(64, 1 << 20);

void BM_PersistNvmThrottled(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region(bytes + (1u << 16), slow_model());
  auto span = region.allocate<std::byte>(bytes);
  for (auto _ : state) region.persist(span.data(), bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PersistNvmThrottled)->Range(64, 1 << 20);

void BM_WriteDurable(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region(bytes + (1u << 16), fast_model());
  auto dst = region.allocate<std::byte>(bytes);
  AlignedBuffer src(bytes);
  for (auto _ : state) region.write_durable(dst.data(), src.data(), bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriteDurable)->Range(4096, 4 << 20);

void BM_DramCacheStageAndDrain(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region(bytes + (1u << 16), fast_model());
  nvm::DramCache dram(32u << 20, region);
  auto dst = region.allocate<std::byte>(bytes);
  AlignedBuffer src(bytes);
  for (auto _ : state) {
    dram.write(dst.data(), src.data(), bytes);
    dram.drain();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DramCacheStageAndDrain)->Range(4096, 4 << 20);

void BM_UndoLogSnapshotCommit(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  pmemtx::PersistentHeap heap(bytes + (1u << 16), 2 * bytes + (1u << 16), fast_model());
  auto span = heap.allocate<std::byte>(bytes);
  pmemtx::UndoLog log(heap);
  for (auto _ : state) {
    pmemtx::Transaction tx(log);
    tx.add(span.data(), bytes);
    span[0] = std::byte{1};
    tx.commit();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UndoLogSnapshotCommit)->Range(4096, 4 << 20);

void BM_CheckpointSaveNvm(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  // Slot capacity covers the chunked image: payload + per-chunk headers.
  nvm::NvmRegion region(3 * bytes + (1u << 20), fast_model());
  checkpoint::NvmBackend backend(region, bytes + (64u << 10));
  AlignedBuffer obj(bytes);
  std::vector<checkpoint::ObjectView> objs = {{"obj", obj.data(), bytes}};
  std::uint64_t version = 0;
  for (auto _ : state) {
    ++version;
    backend.save(static_cast<int>(version % 2), version, objs);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointSaveNvm)->Range(4096, 4 << 20);

// Persist N scattered checksum-sized ranges: one fence per range (the paper's
// CLFLUSH discipline) vs one fence per epoch (Pelley-style batching, the
// related-work optimization the paper points at for ABFT-MM checksums).
void BM_PersistPerRange(benchmark::State& state) {
  const auto ranges = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region((ranges + 2) * 4096, fast_model());
  auto span = region.allocate<std::byte>(ranges * 4096);
  for (auto _ : state) {
    for (std::size_t i = 0; i < ranges; ++i) region.persist(span.data() + i * 4096, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranges));
}
BENCHMARK(BM_PersistPerRange)->Range(8, 1024);

void BM_PersistEpochBatched(benchmark::State& state) {
  const auto ranges = static_cast<std::size_t>(state.range(0));
  nvm::NvmRegion region((ranges + 2) * 4096, fast_model());
  auto span = region.allocate<std::byte>(ranges * 4096);
  nvm::EpochPersister ep(region);
  for (auto _ : state) {
    for (std::size_t i = 0; i < ranges; ++i) ep.stage(span.data() + i * 4096, 64);
    ep.commit_epoch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ranges));
}
BENCHMARK(BM_PersistEpochBatched)->Range(8, 1024);

}  // namespace

BENCHMARK_MAIN();
