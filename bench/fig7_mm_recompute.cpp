// Fig. 7 reproduction — ABFT-MM recomputation cost for two crash tests
// (end of the 4th submatrix multiplication; end of the 4th submatrix
// addition), across matrix sizes, under the crash emulator.
//
// Paper setup: n ∈ {2000,…,8000}, rank 400, hetero NVM/DRAM; recomputation
// normalized by the mean cost of one loop-1 (resp. loop-2) iteration.
// Expected shape: the smallest size loses ~2 submatrix multiplications, larger
// sizes lose exactly 1; the addition crash always loses 1.
// Sizes are scaled (simulating every byte of an 8000² product is not CI-able);
// the temporal-matrix-size : LLC ratio sweep is preserved.
//
// Ported onto ScenarioRunner: the mm-sim workload runs MmCrashConsistent under
// the unified driver; the crash tests are the declarative plans
// `point:mm:loop1_end:4` / `point:mm:loop2_end:4`.
//
// Flags: --sizes=512,768,1024,1280 --rank=64 --cache_mb=8 --crash_unit=4 --quick
#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "mm/mm_sim_workload.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  std::vector<std::size_t> sizes;
  {
    std::stringstream ss(opts.get("sizes", quick ? "384,512" : "512,768,1024,1280"));
    std::string tok;
    while (std::getline(ss, tok, ',')) sizes.push_back(std::stoul(tok));
  }
  const std::size_t rank = static_cast<std::size_t>(opts.get_int("rank", 64));
  const std::size_t cache_mb = static_cast<std::size_t>(opts.get_int("cache_mb", 8));
  const auto crash_unit = static_cast<std::uint64_t>(opts.get_int("crash_unit", 4));

  core::print_banner("Fig. 7", "ABFT-MM recomputation cost, crash at end of submatrix "
                               "multiplication / addition #" + std::to_string(crash_unit) +
                               ", rank k=" + std::to_string(rank));

  core::Table table({"n", "crash_in", "units_lost", "corrected", "detect/unit", "resume/unit",
                     "total/unit"});

  for (const std::size_t n : sizes) {
    mm::MmSimWorkloadConfig wcfg;
    wcfg.n = n;
    wcfg.rank_k = rank;
    wcfg.cache_bytes = cache_mb << 20;
    mm::MmSimWorkload workload(wcfg);

    for (const bool in_loop2 : {false, true}) {
      core::ScenarioConfig cfg;
      cfg.mode = core::Mode::kAlgNvm;  // The simulated scheme is algorithm-directed.
      cfg.crash.kind = core::CrashScenario::Kind::kAtPoint;
      cfg.crash.point = in_loop2 ? mm::MmCrashConsistent::kPointAddEnd
                                 : mm::MmCrashConsistent::kPointMultEnd;
      cfg.crash.occurrence = crash_unit;
      workload.tune_env(cfg.mode, cfg.env);
      const core::ScenarioResult res = core::run_scenario(workload, cfg);
      ADCC_CHECK(res.crashes == 1, "crash did not fire");

      const auto& rb = res.recomputation;
      const double unit =
          in_loop2 ? workload.cc().avg_add_seconds() : workload.cc().avg_mult_seconds();
      table.add_row({std::to_string(n), in_loop2 ? "loop2(add)" : "loop1(mult)",
                     std::to_string(rb.units_redone()), std::to_string(rb.units_corrected),
                     core::Table::fmt(unit > 0 ? rb.detect_seconds / unit : 0, 2),
                     core::Table::fmt(unit > 0 ? rb.resume_seconds / unit : 0, 2),
                     core::Table::fmt(
                         unit > 0 ? (rb.detect_seconds + rb.resume_seconds) / unit : 0, 2)});
    }
  }
  table.print();
  std::printf("\nPaper reference (rank 400): n=2000 loses ~2 submatrix multiplications, larger\n"
              "sizes lose 1; the loop-2 crash always loses 1 submatrix addition.\n");
  return 0;
}
