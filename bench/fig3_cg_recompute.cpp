// Fig. 3 reproduction — CG recomputation cost (detect + resume) vs input
// problem class, under the crash emulator with an 8 MB LLC (Xeon E5606-like).
//
// Paper setup: crash at Fig. 2 line 10 in the 15th iteration of NPB CG; the
// recomputation time is normalized by the mean per-iteration time, and broken
// into "detecting where to restart" and "resuming computation time".
// Expected shape: small classes (S, W) lose all 15 iterations because their
// working set never leaves the cache; large classes (B, C) lose exactly 1.
//
// Ported onto ScenarioRunner: the cg-sim workload runs CgCrashConsistent under
// the unified driver and the crash is the declarative plan
// `point:cg:p_updated:<crash_iter>` — the same spelling `adccbench
// --workload=cg-sim --crash=...` accepts.
//
// Flags: --quick (classes S,W,A only), --classes=S,W,A,B,C, --cache_mb=8,
//        --iters=15, --crash_iter=15
#include <cstdio>
#include <sstream>

#include "cg/cg_cc.hpp"
#include "cg/cg_sim_workload.hpp"
#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "linalg/spgen.hpp"

namespace {

using namespace adcc;

std::vector<linalg::CgClass> parse_classes(const std::string& spec) {
  std::vector<linalg::CgClass> out;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == "S") out.push_back(linalg::CgClass::S);
    else if (tok == "W") out.push_back(linalg::CgClass::W);
    else if (tok == "A") out.push_back(linalg::CgClass::A);
    else if (tok == "B") out.push_back(linalg::CgClass::B);
    else if (tok == "C") out.push_back(linalg::CgClass::C);
    else ADCC_CHECK(false, "unknown CG class");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  opts.doc("classes", "comma-separated NPB classes", "S,W,A,B,C (quick: S,W,A)")
      .doc("iters", "CG iterations", "15")
      .doc("crash_iter", "iteration the crash interrupts", "iters")
      .doc("cache_mb", "simulated LLC size, MB", "8")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig3_cg_recompute")) return 0;
  const bool quick = opts.get_bool("quick");
  const auto classes =
      parse_classes(opts.get("classes", quick ? "S,W,A" : "S,W,A,B,C"));
  const std::size_t iters = opts.get_size("iters", 15);
  const std::size_t crash_iter = opts.get_size("crash_iter", iters);
  const std::size_t cache_mb = opts.get_size("cache_mb", 8);

  core::print_banner("Fig. 3",
                     "CG recomputation cost vs input class (crash at line 10 of iteration " +
                         std::to_string(crash_iter) + ", " + std::to_string(cache_mb) +
                         " MB simulated LLC)");

  core::Table table({"class", "n", "nnz", "iters_lost", "detect/iter", "resume/iter",
                     "total/iter", "detect_s", "resume_s"});

  // The declarative plan: crash at the crash_iter-th hit of Fig. 2 line 10.
  core::CrashScenario crash;
  crash.kind = core::CrashScenario::Kind::kAtPoint;
  crash.point = cg::CgCrashConsistent::kPointPUpdated;
  crash.occurrence = crash_iter;

  for (const auto cls : classes) {
    const auto shape = linalg::shape_of(cls);

    cg::CgSimWorkloadConfig wcfg;
    wcfg.n = shape.n;
    wcfg.nz_per_row = shape.nz_per_row;
    wcfg.iters = iters;
    wcfg.cache_bytes = cache_mb << 20;
    cg::CgSimWorkload workload(wcfg);

    core::ScenarioConfig cfg;
    cfg.mode = core::Mode::kAlgNvm;  // The simulated scheme is algorithm-directed.
    cfg.crash = crash;
    workload.tune_env(cfg.mode, cfg.env);
    const core::ScenarioResult res = core::run_scenario(workload, cfg);
    ADCC_CHECK(res.crashes == 1, "crash did not fire");

    const auto& rb = res.recomputation;
    const double unit = workload.cc().avg_iter_seconds();
    table.add_row({linalg::name_of(cls), std::to_string(shape.n),
                   std::to_string(workload.matrix().nnz()),
                   std::to_string(rb.units_redone()),
                   core::Table::fmt(unit > 0 ? rb.detect_seconds / unit : 0, 2),
                   core::Table::fmt(unit > 0 ? rb.resume_seconds / unit : 0, 2),
                   core::Table::fmt(
                       unit > 0 ? (rb.detect_seconds + rb.resume_seconds) / unit : 0, 2),
                   core::Table::fmt(rb.detect_seconds, 4),
                   core::Table::fmt(rb.resume_seconds, 4)});
  }
  table.print();
  std::printf("\nPaper reference: classes S/W lose all 15 iterations; classes B/C lose 1;\n"
              "recomputation (normalized by one CG iteration) shrinks as the input grows.\n");
  return 0;
}
