// Fig. 3 reproduction — CG recomputation cost (detect + resume) vs input
// problem class, under the crash emulator with an 8 MB LLC (Xeon E5606-like).
//
// Paper setup: crash at Fig. 2 line 10 in the 15th iteration of NPB CG; the
// recomputation time is normalized by the mean per-iteration time, and broken
// into "detecting where to restart" and "resuming computation time".
// Expected shape: small classes (S, W) lose all 15 iterations because their
// working set never leaves the cache; large classes (B, C) lose exactly 1.
//
// Flags: --quick (classes S,W,A only), --classes=S,W,A,B,C, --cache_mb=8,
//        --iters=15, --crash_iter=15
#include <cstdio>
#include <sstream>

#include "cg/cg_cc.hpp"
#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "linalg/spgen.hpp"

namespace {

using namespace adcc;

std::vector<linalg::CgClass> parse_classes(const std::string& spec) {
  std::vector<linalg::CgClass> out;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == "S") out.push_back(linalg::CgClass::S);
    else if (tok == "W") out.push_back(linalg::CgClass::W);
    else if (tok == "A") out.push_back(linalg::CgClass::A);
    else if (tok == "B") out.push_back(linalg::CgClass::B);
    else if (tok == "C") out.push_back(linalg::CgClass::C);
    else ADCC_CHECK(false, "unknown CG class");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  opts.doc("classes", "comma-separated NPB classes", "S,W,A,B,C (quick: S,W,A)")
      .doc("iters", "CG iterations", "15")
      .doc("crash_iter", "iteration the crash interrupts", "iters")
      .doc("cache_mb", "simulated LLC size, MB", "8")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig3_cg_recompute")) return 0;
  const bool quick = opts.get_bool("quick");
  const auto classes =
      parse_classes(opts.get("classes", quick ? "S,W,A" : "S,W,A,B,C"));
  const std::size_t iters = opts.get_size("iters", 15);
  const std::size_t crash_iter = opts.get_size("crash_iter", iters);
  const std::size_t cache_mb = opts.get_size("cache_mb", 8);

  core::print_banner("Fig. 3",
                     "CG recomputation cost vs input class (crash at line 10 of iteration " +
                         std::to_string(crash_iter) + ", " + std::to_string(cache_mb) +
                         " MB simulated LLC)");

  core::Table table({"class", "n", "nnz", "iters_lost", "detect/iter", "resume/iter",
                     "total/iter", "detect_s", "resume_s"});

  for (const auto cls : classes) {
    const auto shape = linalg::shape_of(cls);
    const auto a = linalg::make_spd(shape.n, shape.nz_per_row, 42);
    const auto b = linalg::make_rhs(shape.n, 43);

    cg::CgCcConfig cfg;
    cfg.n_iters = iters;
    cfg.cache.size_bytes = cache_mb << 20;
    cfg.cache.ways = 16;
    cg::CgCrashConsistent cc(a, b, cfg);
    cc.sim().scheduler().arm_at_point(cg::CgCrashConsistent::kPointPUpdated, crash_iter);
    ADCC_CHECK(cc.run(), "crash did not fire");
    const cg::CgRecovery rec = cc.recover_and_resume();
    const double unit = cc.avg_iter_seconds();

    table.add_row({linalg::name_of(cls), std::to_string(shape.n), std::to_string(a.nnz()),
                   std::to_string(rec.iters_lost),
                   core::Table::fmt(unit > 0 ? rec.detect_seconds / unit : 0, 2),
                   core::Table::fmt(unit > 0 ? rec.resume_seconds / unit : 0, 2),
                   core::Table::fmt(unit > 0 ? (rec.detect_seconds + rec.resume_seconds) / unit : 0, 2),
                   core::Table::fmt(rec.detect_seconds, 4), core::Table::fmt(rec.resume_seconds, 4)});
  }
  table.print();
  std::printf("\nPaper reference: classes S/W lose all 15 iterations; classes B/C lose 1;\n"
              "recomputation (normalized by one CG iteration) shrinks as the input grows.\n");
  return 0;
}
