// Fig. 12 reproduction — XSBench tallies: no-crash vs crash+restart under the
// paper's selective cache-line flushing (Fig. 11: flush macro_xs_vector, the
// five counters and the index every 0.01 % of lookups).
//
// Expected shape: the two tally distributions agree (in our deterministic
// counter-based-RNG setup they match exactly).
//
// Flags: --lookups=200000 --nuclides=68 --gridpoints=2000 --cache_mb=8
//        --crash_pct=10 --flush_pct=0.01 --quick
#include <cstdio>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "mc/xs_cc.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  mc::XsConfig dc;
  dc.n_nuclides = static_cast<std::size_t>(opts.get_int("nuclides", quick ? 24 : 68));
  dc.gridpoints_per_nuclide =
      static_cast<std::size_t>(opts.get_int("gridpoints", quick ? 500 : 2000));
  const auto lookups =
      static_cast<std::uint64_t>(opts.get_int("lookups", quick ? 50'000 : 200'000));
  const double crash_pct = opts.get_double("crash_pct", 10.0);
  const double flush_pct = opts.get_double("flush_pct", 0.01);
  const std::size_t cache_mb = static_cast<std::size_t>(opts.get_int("cache_mb", 8));

  const mc::XsDataHost data(dc);
  core::print_banner("Fig. 12",
                     "XSBench tallies: no crash vs crash+selective flushing (every " +
                         core::Table::fmt(flush_pct, 2) + "% of lookups)");

  mc::XsCcConfig cfg;
  cfg.total_lookups = lookups;
  cfg.policy = mc::XsFlushPolicy::kSelective;
  cfg.flush_interval = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(lookups) * flush_pct / 100.0));
  cfg.cache.size_bytes = cache_mb << 20;
  cfg.cache.ways = 16;
  cfg.rng_seed = 99;

  mc::XsCrashConsistent nocrash(data, cfg);
  ADCC_CHECK(!nocrash.run(), "unexpected crash");
  const mc::Tally ref = nocrash.tally();

  mc::XsCrashConsistent crashed(data, cfg);
  crashed.sim().scheduler().arm_at_point(
      mc::XsCrashConsistent::kPointLookupEnd,
      static_cast<std::uint64_t>(static_cast<double>(lookups) * crash_pct / 100.0));
  ADCC_CHECK(crashed.run(), "crash did not fire");
  const mc::XsRecovery rec = crashed.recover_and_resume();
  const mc::Tally got = crashed.tally();

  core::Table table({"interaction type", "no crash", "crash+selective flush", "gap (pp)"});
  const auto pr = ref.percentages(lookups);
  const auto pg = got.percentages(lookups);
  for (int c = 0; c < mc::kChannels; ++c) {
    table.add_row({std::to_string(c + 1), core::Table::fmt(pr[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pg[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pr[static_cast<std::size_t>(c)] - pg[static_cast<std::size_t>(c)], 2)});
  }
  table.print();
  std::printf("\nrestart lookup: %llu (bounded loss: <= %zu lookups re-executed)\n",
              static_cast<unsigned long long>(rec.restart_lookup), cfg.flush_interval);
  std::printf("max per-type gap: %.4f pp (paper: distributions agree; exact here)\n",
              mc::max_percentage_gap(ref, got, lookups));
  std::printf("tallies identical: %s\n", ref.counts == got.counts ? "YES" : "NO");
  return 0;
}
