// Fig. 12 reproduction — XSBench tallies: no-crash vs crash+restart under the
// paper's selective cache-line flushing (Fig. 11: flush macro_xs_vector, the
// five counters and the index every 0.01 % of lookups).
//
// Expected shape: the two tally distributions agree (in our deterministic
// counter-based-RNG setup they match exactly).
//
// Ported onto ScenarioRunner: same mc-sim workload as fig10, selective policy;
// ScenarioResult carries the restart lookup, and the bench exits non-zero
// unless the crashed run's tallies match the no-crash reference bit-for-bit.
//
// Flags: --lookups=200000 --nuclides=68 --gridpoints=2000 --cache_mb=8
//        --crash_pct=10 --flush_pct=0.01 --quick
#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "mc/mc_sim_workload.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");

  mc::McSimWorkloadConfig wcfg;
  wcfg.data.n_nuclides = static_cast<std::size_t>(opts.get_int("nuclides", quick ? 24 : 68));
  wcfg.data.gridpoints_per_nuclide =
      static_cast<std::size_t>(opts.get_int("gridpoints", quick ? 500 : 2000));
  wcfg.lookups = static_cast<std::uint64_t>(opts.get_int("lookups", quick ? 50'000 : 200'000));
  wcfg.policy = mc::XsFlushPolicy::kSelective;
  const double crash_pct = opts.get_double("crash_pct", 10.0);
  const double flush_pct = opts.get_double("flush_pct", 0.01);
  wcfg.flush_interval = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(wcfg.lookups) * flush_pct / 100.0));
  wcfg.cache_bytes = static_cast<std::size_t>(opts.get_int("cache_mb", 8)) << 20;
  wcfg.rng_seed = 99;
  const std::uint64_t lookups = wcfg.lookups;

  mc::McSimWorkload workload(wcfg);
  core::print_banner("Fig. 12",
                     "XSBench tallies: no crash vs crash+selective flushing (every " +
                         core::Table::fmt(flush_pct, 2) + "% of lookups)");

  core::ScenarioConfig nocrash;
  nocrash.mode = core::Mode::kAlgNvm;  // The simulated scheme fixes durability.
  workload.tune_env(nocrash.mode, nocrash.env);
  const core::ScenarioResult clean = core::run_scenario(workload, nocrash);
  ADCC_CHECK(clean.crashes == 0, "unexpected crash");
  const mc::Tally ref = workload.tally();

  core::ScenarioConfig crashed = nocrash;
  crashed.crash.kind = core::CrashScenario::Kind::kAtPoint;
  crashed.crash.point = mc::XsCrashConsistent::kPointLookupEnd;
  crashed.crash.occurrence =
      static_cast<std::uint64_t>(static_cast<double>(lookups) * crash_pct / 100.0);
  const core::ScenarioResult res = core::run_scenario(workload, crashed);
  ADCC_CHECK(res.crashes == 1, "crash did not fire");
  const mc::Tally got = workload.tally();

  core::Table table({"interaction type", "no crash", "crash+selective flush", "gap (pp)"});
  const auto pr = ref.percentages(lookups);
  const auto pg = got.percentages(lookups);
  for (int c = 0; c < mc::kChannels; ++c) {
    table.add_row({std::to_string(c + 1), core::Table::fmt(pr[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pg[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pr[static_cast<std::size_t>(c)] - pg[static_cast<std::size_t>(c)], 2)});
  }
  table.print();
  std::printf("\nrestart lookup: %llu (bounded loss: <= %zu lookups re-executed)\n",
              static_cast<unsigned long long>(res.restart_unit - 1),
              wcfg.flush_interval);
  std::printf("max per-type gap: %.4f pp (paper: distributions agree; exact here)\n",
              mc::max_percentage_gap(ref, got, lookups));
  std::printf("tallies identical: %s\n", ref.counts == got.counts ? "YES" : "NO");
  return ref.counts == got.counts ? 0 : 1;
}
