// Ablation (paper §III-B model check, not a paper figure) — CG iterations
// lost vs simulated LLC capacity, fixed input.
//
// The paper's performance characterization: once the per-iteration working
// set exceeds the cache, hardware evictions persist older history rows and
// recomputation is bounded by ~1 iteration; a cache large enough to hold the
// whole history loses everything. This sweep exposes that boundary directly.
//
// Since the sweep-engine port this is a thin SweepSpec declaration over the
// cg-sim workload — equivalent to
//
//   adccbench --sweep=workload=cg-sim,cache_mb=1:64:x2,crash=point:cg:p_updated:15
//   (plus --no_baseline)
//
// so it inherits --sweep_jobs, --format/--out, per-cell failure capture, and
// every other engine feature. Any mid-unit crash plan works via --crash.
//
// Flags: --n=14000 --nz=11 --iters=15 --cache_mbs=1+2+4+8+16+32+64 --quick
// (--cache_mbs also accepts the legacy comma-separated spelling)
#include <algorithm>
#include <cstdio>

#include "cg/cg_cc.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) try {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("n", "CG problem rows", "14000 (quick: 4000)")
      .doc("nz", "nonzeros per row", "11")
      .doc("iters", "CG iteration count (the crash lands in the last one)", "15")
      .doc("cache_mbs", "simulated LLC sizes to sweep, MB", "1+2+4+8+16+32+64")
      .doc("crash", "crash plan override", "point:cg:p_updated:<iters>")
      .doc("sweep_jobs", "worker threads executing deck cells", "1")
      .doc("format", "table output: table | csv | json", "table")
      .doc("no_timing", "blank wall-clock columns", "off")
      .doc("quick", "CI-sized problem defaults", "off");
  if (opts.maybe_print_help("ablation_cg_cachesize")) return 0;
  const bool quick = opts.get_bool("quick");
  const auto format = core::parse_table_format(opts.get("format", "table"));
  if (!format) {
    std::fprintf(stderr, "ablation_cg_cachesize: bad --format\n");
    return 2;
  }

  // The ablation's own problem defaults (denser per-iteration working set than
  // the cg-sim registry defaults, so the cache boundary lands inside the
  // swept range); explicit flags still win.
  if (!opts.has("n")) opts.set("n", quick ? "4000" : "14000");
  if (!opts.has("nz")) opts.set("nz", "11");
  const std::size_t iters = opts.get_size("iters", 15);
  opts.set("iters", std::to_string(iters));

  std::string cache_mbs = opts.get("cache_mbs", quick ? "1+4+16" : "1+2+4+8+16+32+64");
  std::replace(cache_mbs.begin(), cache_mbs.end(), ',', '+');  // Legacy spelling.
  const std::string crash = opts.get(
      "crash", std::string("point:") + cg::CgCrashConsistent::kPointPUpdated + ":" +
                   std::to_string(iters));

  std::string error;
  const auto spec = core::parse_sweep(
      "workload=cg-sim,cache_mb=" + cache_mbs + ",crash=" + crash, &error);
  if (!spec) {
    std::fprintf(stderr, "ablation_cg_cachesize: %s\n", error.c_str());
    return 2;
  }

  core::SweepConfig cfg;
  cfg.base = opts;
  cfg.jobs = std::max(1, static_cast<int>(opts.get_int("sweep_jobs", 1)));
  cfg.baseline = false;  // The table is a recomputation sweep, not an overhead one.

  if (*format == core::TableFormat::kPlain) {
    core::print_banner("Ablation", "CG iterations lost vs simulated LLC size (n=" +
                                       opts.get("n", "") + ", crash=" + crash + ")");
  }
  const core::SweepResult deck = core::run_sweep(*spec, cfg);
  deck.table(!opts.get_bool("no_timing")).print(*format);
  if (*format == core::TableFormat::kPlain) {
    std::printf("\nExpected: iterations lost grow with cache capacity — the opportunistic\n"
                "eviction persistence the paper relies on needs working set >> LLC.\n");
  }
  // The pre-port ADCC_CHECK(cc.run(), "crash did not fire"): a recomputation
  // table whose cells never crashed (typo'd point name, occurrence past the
  // run) measures nothing and must not pass silently.
  for (const core::SweepCellResult& cell : deck.cells) {
    if (cell.status == core::SweepCellResult::Status::kOk && cell.result.crashes == 0) {
      std::fprintf(stderr,
                   "ablation_cg_cachesize: crash plan '%s' never fired in cell %zu\n",
                   cell.crash_label.c_str(), cell.index);
      return 1;
    }
  }
  return deck.all_ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ablation_cg_cachesize: %s\n", e.what());
  return 2;
}
