// Ablation (paper §III-B model check, not a paper figure) — CG iterations
// lost vs simulated LLC capacity, fixed input.
//
// The paper's performance characterization: once the per-iteration working
// set exceeds the cache, hardware evictions persist older history rows and
// recomputation is bounded by ~1 iteration; a cache large enough to hold the
// whole history loses everything. This sweep exposes that boundary directly.
//
// Flags: --n=14000 --nz=11 --iters=15 --cache_mbs=1,2,4,8,16,32,64 --quick
#include <cstdio>
#include <sstream>

#include "cg/cg_cc.hpp"
#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "linalg/spgen.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", quick ? 4000 : 14000));
  const std::size_t nz = static_cast<std::size_t>(opts.get_int("nz", 11));
  const std::size_t iters = static_cast<std::size_t>(opts.get_int("iters", 15));
  std::vector<std::size_t> cache_mbs;
  {
    std::stringstream ss(opts.get("cache_mbs", quick ? "1,4,16" : "1,2,4,8,16,32,64"));
    std::string tok;
    while (std::getline(ss, tok, ',')) cache_mbs.push_back(std::stoul(tok));
  }

  const auto a = linalg::make_spd(n, nz, 42);
  const auto b = linalg::make_rhs(n, 43);
  const std::size_t per_iter_kb =
      (a.footprint_bytes() + 4 * n * sizeof(double)) >> 10;

  core::print_banner("Ablation", "CG iterations lost vs simulated LLC size (n=" +
                                     std::to_string(n) + ", per-iteration working set ~" +
                                     std::to_string(per_iter_kb) + " KB)");

  core::Table table({"cache_mb", "iters_lost", "restart_iter", "detect/iter", "resume/iter"});
  for (const std::size_t mb : cache_mbs) {
    cg::CgCcConfig cfg;
    cfg.n_iters = iters;
    cfg.cache.size_bytes = mb << 20;
    cfg.cache.ways = 16;
    cg::CgCrashConsistent cc(a, b, cfg);
    cc.sim().scheduler().arm_at_point(cg::CgCrashConsistent::kPointPUpdated, iters);
    ADCC_CHECK(cc.run(), "crash did not fire");
    const cg::CgRecovery rec = cc.recover_and_resume();
    const double unit = cc.avg_iter_seconds();
    table.add_row({std::to_string(mb), std::to_string(rec.iters_lost),
                   std::to_string(rec.restart_iter),
                   core::Table::fmt(unit > 0 ? rec.detect_seconds / unit : 0, 2),
                   core::Table::fmt(unit > 0 ? rec.resume_seconds / unit : 0, 2)});
  }
  table.print();
  std::printf("\nExpected: iterations lost grow with cache capacity — the opportunistic\n"
              "eviction persistence the paper relies on needs working set >> LLC.\n");
  return 0;
}
