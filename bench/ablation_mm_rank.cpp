// Ablation (paper §III-C claim) — algorithm-directed ABFT-MM overhead vs rank
// size: "a larger rank size results in a smaller runtime overhead, because the
// algorithm does not need to frequently flush checksum cache blocks".
//
// Flags: --n=800 --ranks=25,50,100,200,400 --reps=2 --threads=1 --quick
// (single-threaded by default, matching the Fig. 8 methodology)
#include <omp.h>

#include <cstdio>
#include <sstream>

#include "abft/abft_gemm.hpp"
#include "common/options.hpp"
#include "core/harness.hpp"
#include "core/report.hpp"
#include "mm/mm_cc.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", quick ? 400 : 800));
  std::vector<std::size_t> ranks;
  {
    std::stringstream ss(opts.get("ranks", quick ? "25,100,400" : "25,50,100,200,400"));
    std::string tok;
    while (std::getline(ss, tok, ',')) ranks.push_back(std::min(std::stoul(tok), n));
  }
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 2));
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  if (threads > 0) omp_set_num_threads(threads);

  linalg::Matrix a(n, n), b(n, n);
  a.fill_random(3, -1, 1);
  b.fill_random(4, -1, 1);

  core::print_banner("Ablation", "algorithm-directed ABFT-MM overhead vs rank, n=" +
                                     std::to_string(n));

  core::Table table({"rank", "panels", "flush_lines", "native_s", "alg_s", "overhead"});
  for (const std::size_t rank : ranks) {
    const double native_s =
        core::median_seconds([&] { abft::abft_gemm(a, b, rank); }, reps);
    std::uint64_t flushed = 0;
    const double alg_s = core::median_seconds(
        [&] {
          nvm::PerfModel perf(nvm::PerfConfig{.bandwidth_slowdown = 1.0, .enabled = false});
          nvm::NvmRegion region(mm::mm_cc_native_arena_bytes(n, rank), perf);
          flushed = mm::run_mm_cc_native(a, b, rank, region).checksum_lines_flushed;
        },
        reps);
    const auto nt = core::normalize(alg_s, native_s);
    table.add_row({std::to_string(rank), std::to_string((n + rank - 1) / rank),
                   std::to_string(flushed), core::Table::fmt(native_s, 4),
                   core::Table::fmt(alg_s, 4),
                   core::Table::fmt(nt.overhead_percent(), 1) + "%"});
  }
  table.print();
  std::printf("\nExpected: overhead falls as the rank grows (fewer checksum flushes and\n"
              "fewer temporal matrices), the paper's 8.2%% -> 1.3%% trend.\n");
  return 0;
}
