// Ablation (paper §III-C claim) — algorithm-directed ABFT-MM overhead vs rank
// size: "a larger rank size results in a smaller runtime overhead, because the
// algorithm does not need to frequently flush checksum cache blocks".
//
// Since the sweep-engine port this is a thin SweepSpec declaration over the mm
// workload — equivalent to
//
//   adccbench --workload=mm --sweep=mode=alg-nvm,rank=25+50+100+200+400 --threads=1
//
// The `overhead` column against the per-rank native baseline is the paper's
// trend. --mode=all widens the deck to the full seven-mode cross-product, and
// --crash adds any crash plan — both for free from the engine.
//
// Flags: --n=800 --ranks=25+50+100+200+400 --mode=alg-nvm --reps=2 --threads=1
//        --quick  (--ranks also accepts the legacy comma-separated spelling)
#include <algorithm>
#include <cstdio>

#include "common/options.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) try {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("n", "matrix dimension", "800 (quick: 400)")
      .doc("ranks", "panel ranks to sweep", "25+50+100+200+400")
      .doc("mode", "durability mode(s) for the deck, or 'all'", "alg-nvm")
      .doc("crash", "crash plan for every cell", "none")
      .doc("reps", "timed repetitions per cell (median reported)", "2 (quick: 1)")
      .doc("threads", "OpenMP threads (Fig. 8 methodology: 1)", "1")
      .doc("sweep_jobs", "worker threads executing deck cells", "1")
      .doc("format", "table output: table | csv | json", "table")
      .doc("no_timing", "blank wall-clock columns", "off")
      .doc("quick", "CI-sized problem defaults", "off");
  if (opts.maybe_print_help("ablation_mm_rank")) return 0;
  const bool quick = opts.get_bool("quick");
  const auto format = core::parse_table_format(opts.get("format", "table"));
  if (!format) {
    std::fprintf(stderr, "ablation_mm_rank: bad --format\n");
    return 2;
  }

  if (!opts.has("n")) opts.set("n", quick ? "400" : "800");
  if (!opts.has("reps")) opts.set("reps", quick ? "1" : "2");
  if (!opts.has("threads")) opts.set("threads", "1");  // Single-threaded, as Fig. 8.

  std::string ranks = opts.get("ranks", quick ? "25+100+400" : "25+50+100+200+400");
  std::replace(ranks.begin(), ranks.end(), ',', '+');  // Legacy spelling.

  std::string error;
  auto spec = core::parse_sweep("workload=mm,mode=" + opts.get("mode", "alg-nvm") +
                                    ",rank=" + ranks +
                                    ",crash=" + opts.get("crash", "none"),
                                &error);
  if (!spec) {
    std::fprintf(stderr, "ablation_mm_rank: %s\n", error.c_str());
    return 2;
  }
  // Legacy clamp, applied to the expanded axis so the table's rank column
  // matches what each cell actually ran: a panel cannot be wider than the
  // matrix (duplicates after clamping are dropped).
  {
    const std::size_t n = opts.get_size("n", 800);
    auto& values = spec->axes[2].values;  // workload, mode, rank, crash.
    std::vector<std::string> clamped;
    for (const std::string& v : values) {
      std::string c = std::to_string(std::min<std::size_t>(std::stoull(v), n));
      if (std::find(clamped.begin(), clamped.end(), c) == clamped.end()) {
        clamped.push_back(std::move(c));
      }
    }
    values = std::move(clamped);
  }

  core::SweepConfig cfg;
  cfg.base = opts;
  cfg.jobs = std::max(1, static_cast<int>(opts.get_int("sweep_jobs", 1)));
  cfg.baseline = !opts.get_bool("no_timing");  // Baselines only feed timing columns.

  if (*format == core::TableFormat::kPlain) {
    core::print_banner("Ablation", "algorithm-directed ABFT-MM overhead vs rank, n=" +
                                       opts.get("n", ""));
  }
  const core::SweepResult deck = core::run_sweep(*spec, cfg);
  deck.table(!opts.get_bool("no_timing")).print(*format);
  if (*format == core::TableFormat::kPlain) {
    std::printf("\nExpected: overhead falls as the rank grows (fewer checksum flushes and\n"
                "fewer temporal matrices), the paper's 8.2%% -> 1.3%% trend.\n");
  }
  return deck.all_ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ablation_mm_rank: %s\n", e.what());
  return 2;
}
