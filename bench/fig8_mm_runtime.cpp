// Fig. 8 reproduction — ABFT-MM runtime under the seven durability schemes at
// three rank sizes, normalized to the native ABFT GEMM.
//
// Paper setup: n = 8000, ranks {200, 400, 1000}; checkpoint/transaction at the
// end of every submatrix multiplication. Paper numbers: algorithm-directed
// ≤ 8.2 % at rank 200 shrinking to 1.3 % at rank 1000; NVM-based checkpoint
// ≥ 21.8 % at rank 200; PMEM ≈ 5.5×.
// The matrix is scaled (default n = 1000) and the ranks are scaled by the same
// n ratio so the panels-per-product counts match the paper's sweep; GEMM runs
// on the serial kernel backend by default to approximate the paper's
// compute/durability balance (pass --backend=omp --threads=N for parallel
// kernels; needs -DADCC_OPENMP=ON).
//
// Ported to the ScenarioRunner: one MmWorkload per rank, the scheme sweep is a
// mode list, and the native(abft) baseline is the same workload in kNative
// (panel-wise Fig. 5 verification + correction included). Methodology note:
// Workload::prepare (input encoding, accumulator allocation/zeroing, heap
// construction) is excluded from the timed region for every scheme including
// the baseline — only the panel loop + durability are timed.
#include <cstdio>
#include <sstream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "kernels/backend.hpp"
#include "kernels/threads.hpp"
#include "mm/mm_workload.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("n", "matrix dimension", "1000 (quick: 500)")
      .doc("ranks", "comma-separated panel ranks", "25,50,125 (quick: 25,125)")
      .doc("reps", "timed repetitions", "2 (quick: 1)")
      .doc("disk_mbps", "ckpt-disk throttle, MB/s", "150")
      .doc("threads", "kernel threads for --backend=omp (0 = ambient)", "1")
      .doc("backend", "kernel backend (serial|omp, omp needs -DADCC_OPENMP=ON)", "serial")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig8_mm_runtime")) return 0;
  const bool quick = opts.get_bool("quick");
  const std::size_t n = opts.get_size("n", quick ? 500 : 1000);
  std::vector<std::size_t> ranks;
  {
    // Paper ranks 200/400/1000 at n=8000 → the same panel counts (40/20/8).
    std::stringstream ss(opts.get("ranks", quick ? "25,125" : "25,50,125"));
    std::string tok;
    while (std::getline(ss, tok, ',')) ranks.push_back(std::stoul(tok));
  }
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 2));
  const double disk_mbps = opts.get_double("disk_mbps", 150.0);
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  const core::ScopedOmpThreads thread_scope(threads);
  const core::KernelBackend& backend = core::kernel_backend(opts.get("backend", "serial"));

  core::print_banner("Fig. 8", "ABFT-MM runtime, 7 schemes, n=" + std::to_string(n) +
                                   " (paper: 8000 with ranks x8000/" + std::to_string(n) + ")");

  for (const std::size_t rank : ranks) {
    std::printf("\n--- rank k = %zu (%zu panels) ---\n", rank, (n + rank - 1) / rank);

    mm::MmWorkloadConfig wc;
    wc.n = n;
    wc.rank_k = rank;
    mm::MmWorkload workload(wc);

    core::ScenarioConfig base;
    base.env.disk_throttle_bytes_per_s = disk_mbps * 1e6;
    base.env.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig8";
    base.backend = &backend;
    auto scenario = [&](core::Mode m, int mode_reps, bool warmup) {
      core::ScenarioConfig cfg = base;
      cfg.mode = m;
      cfg.reps = mode_reps;
      cfg.warmup = warmup;
      workload.tune_env(m, cfg.env);
      return cfg;
    };

    core::ScenarioConfig native_cfg = scenario(core::Mode::kNative, reps, /*warmup=*/true);
    const double native_s = core::run_scenario(workload, native_cfg).seconds;

    core::Table table({"scheme", "seconds", "normalized", "overhead"});
    table.add_row({"native(abft)", core::Table::fmt(native_s, 4), "1.000", "0.0%"});
    for (core::Mode m : {core::Mode::kCkptDisk, core::Mode::kCkptNvm, core::Mode::kCkptHetero,
                         core::Mode::kPmemTx, core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
      const bool disk = m == core::Mode::kCkptDisk;
      core::ScenarioConfig cfg = scenario(m, disk ? 1 : reps, /*warmup=*/false);
      const core::ScenarioResult res = core::run_scenario(workload, cfg);
      const auto nt = core::normalize(res.seconds, native_s);
      table.add_row({core::mode_name(m), core::Table::fmt(res.seconds, 4),
                     core::Table::fmt(nt.normalized, 3),
                     core::Table::fmt(nt.overhead_percent(), 1) + "%"});
    }
    table.print();
  }

  std::printf("\nPaper reference (n=8000): algorithm-directed overhead 8.2%% (rank 200) ->\n"
              "1.3%% (rank 1000); NVM checkpoint >= 21.8%% at rank 200; PMEM ~5.5x.\n");
  return 0;
}
