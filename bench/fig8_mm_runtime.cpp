// Fig. 8 reproduction — ABFT-MM runtime under the seven durability schemes at
// three rank sizes, normalized to the native ABFT GEMM.
//
// Paper setup: n = 8000, ranks {200, 400, 1000}; checkpoint/transaction at the
// end of every submatrix multiplication. Paper numbers: algorithm-directed
// ≤ 8.2 % at rank 200 shrinking to 1.3 % at rank 1000; NVM-based checkpoint
// ≥ 21.8 % at rank 200; PMEM ≈ 5.5×.
// The matrix is scaled (default n = 1000) and the ranks are scaled by the same
// n ratio so the panels-per-product counts match the paper's sweep; GEMM runs
// single-threaded by default to approximate the paper's compute/durability
// balance (pass --threads=0 for all cores).
//
// Flags: --n=1000 --ranks=25,50,125 --reps=2 --disk_mbps=150 --threads=1
//        --quick (n=500, reps=1)
#include <omp.h>

#include <cstdio>
#include <sstream>

#include "abft/abft_gemm.hpp"
#include "common/options.hpp"
#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/report.hpp"
#include "mm/mm_cc.hpp"
#include "mm/mm_ckpt.hpp"
#include "mm/mm_tx.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", quick ? 500 : 1000));
  std::vector<std::size_t> ranks;
  {
    // Paper ranks 200/400/1000 at n=8000 → the same panel counts (40/20/8).
    std::stringstream ss(opts.get("ranks", quick ? "25,125" : "25,50,125"));
    std::string tok;
    while (std::getline(ss, tok, ',')) ranks.push_back(std::stoul(tok));
  }
  const int reps = static_cast<int>(opts.get_int("reps", quick ? 1 : 2));
  const double disk_mbps = opts.get_double("disk_mbps", 150.0);
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  if (threads > 0) omp_set_num_threads(threads);

  linalg::Matrix a(n, n), b(n, n);
  a.fill_random(3, -1, 1);
  b.fill_random(4, -1, 1);

  core::print_banner("Fig. 8", "ABFT-MM runtime, 7 schemes, n=" + std::to_string(n) +
                                   " (paper: 8000 with ranks x8000/" + std::to_string(n) + ")");

  for (const std::size_t rank : ranks) {
    std::printf("\n--- rank k = %zu (%zu panels) ---\n", rank, (n + rank - 1) / rank);

    const double native_s =
        core::median_seconds([&] { abft::abft_gemm(a, b, rank); }, reps);

    core::Table table({"scheme", "seconds", "normalized", "overhead"});
    table.add_row({"native(abft)", core::Table::fmt(native_s, 4), "1.000", "0.0%"});
    auto report = [&](const std::string& name, double seconds) {
      const auto nt = core::normalize(seconds, native_s);
      table.add_row({name, core::Table::fmt(seconds, 4), core::Table::fmt(nt.normalized, 3),
                     core::Table::fmt(nt.overhead_percent(), 1) + "%"});
    };

    core::ModeEnvConfig ec;
    const std::size_t cf_bytes = (n + 1) * (n + 1) * sizeof(double);
    ec.arena_bytes = 2 * cf_bytes + (16u << 20);
    ec.slot_bytes = cf_bytes + (1u << 20);
    ec.disk_throttle_bytes_per_s = disk_mbps * 1e6;
    ec.scratch_dir = std::filesystem::temp_directory_path() / "adcc_fig8";

    for (core::Mode m : {core::Mode::kCkptDisk, core::Mode::kCkptNvm, core::Mode::kCkptHetero}) {
      core::ModeEnv env = core::make_env(m, ec);  // Setup excluded from timing.
      const double s = core::median_seconds(
          [&] { mm::run_mm_checkpointed(a, b, rank, *env.backend); },
          m == core::Mode::kCkptDisk ? 1 : reps, /*warmup=*/false);
      report(core::mode_name(m), s);
    }

    {
      nvm::PerfModel perf(nvm::PerfConfig{.bandwidth_slowdown = 1.0, .enabled = false});
      std::vector<double> times;
      for (int r = 0; r < reps; ++r) {
        pmemtx::PersistentHeap heap(mm::mm_tx_data_bytes(n), mm::mm_tx_log_bytes(n), perf);
        times.push_back(core::time_seconds([&] { mm::run_mm_tx(a, b, rank, heap); }));
      }
      report("pmem-tx", median(std::move(times)));
    }

    for (core::Mode m : {core::Mode::kAlgNvm, core::Mode::kAlgHetero}) {
      core::ModeEnvConfig aec = ec;
      aec.arena_bytes = mm::mm_cc_native_arena_bytes(n, rank);
      core::ModeEnv env = core::make_env(m, aec);
      std::vector<double> times;
      for (int r = 0; r < reps; ++r) {
        env.region->reset();
        times.push_back(
            core::time_seconds([&] { mm::run_mm_cc_native(a, b, rank, *env.region); }));
      }
      report(core::mode_name(m), median(std::move(times)));
    }
    table.print();
  }

  std::printf("\nPaper reference (n=8000): algorithm-directed overhead 8.2%% (rank 200) ->\n"
              "1.3%% (rank 1000); NVM checkpoint >= 21.8%% at rank 200; PMEM ~5.5x.\n");
  return 0;
}
