// adccbench — the registry-driven scenario driver: any workload x any of the
// seven durability modes x any crash plan, one binary.
//
//   adccbench --list
//   adccbench --workload=cg --mode=alg-nvm/dram --crash=step:7
//   adccbench --workload=mm --mode=all --reps=3
//   adccbench --workload=cg --mode=all --crash=fuzz:17     # mid-unit fuzzing
//   adccbench --workload=cg-sim --crash=point:cg:p_updated:15
//   adccbench --matrix --quick          # full workload x mode cross-product
//   adccbench --matrix --quick --format=csv                # machine-readable
//
// Unless --no_baseline is passed, a native run of the same workload is timed
// first and every row is normalized against it (the paper's y-axis).
// Mid-unit crash plans (access:/point:/fuzz:) are armed on the workload's
// FaultSurface; the *-sim workloads run under the memsim crash emulator and
// ignore the mode axis, so --matrix skips them.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace {

using namespace adcc;

// Per-process scratch, removed at exit: concurrent invocations (ctest -j runs
// both smoke matrices at once) must not share ckpt-disk slot files.
const std::filesystem::path& scratch_dir() {
  static const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("adccbench." + std::to_string(::getpid()));
  return dir;
}

core::ScenarioConfig make_config(const core::Workload& workload, core::Mode mode,
                                 const core::CrashScenario& crash, const Options& opts) {
  core::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.crash = crash;
  cfg.env.scratch_dir = scratch_dir();
  cfg.env.disk_throttle_bytes_per_s = opts.get_double("disk_mbps", 150.0) * 1e6;
  workload.tune_env(mode, cfg.env);
  if (opts.has("arena")) cfg.env.arena_bytes = opts.get_size("arena", cfg.env.arena_bytes);
  if (opts.has("slot")) cfg.env.slot_bytes = opts.get_size("slot", cfg.env.slot_bytes);
  cfg.reps = static_cast<int>(opts.get_int("reps", 1));
  cfg.warmup = opts.get_bool("warmup", false);
  cfg.verify = opts.get_bool("verify", true);
  return cfg;
}

/// Runs one workload across `modes`, appending one row per scenario to
/// `table` (shared across workloads so csv/json stay one parseable document);
/// returns false if any verification failed.
bool run_workload(const std::string& name, const std::vector<core::Mode>& modes,
                  const core::CrashScenario& crash, const Options& opts, bool banner,
                  core::TableFormat format, core::Table& table) {
  const auto workload = core::WorkloadRegistry::instance().create(name, opts);
  if (banner && format == core::TableFormat::kPlain) {
    core::print_banner("adccbench", name + " — " +
                                        core::WorkloadRegistry::instance().description(name) +
                                        ", crash=" + core::crash_name(crash));
  }

  // Native baseline for the normalized column (skipped with --no_baseline).
  // When the mode list itself starts with a crash-free kNative scenario, that
  // row doubles as the baseline instead of paying a second native run.
  double native_seconds = 0.0;
  const bool reuse_native_row = !modes.empty() && modes.front() == core::Mode::kNative &&
                                crash.kind == core::CrashScenario::Kind::kNone;
  if (!opts.get_bool("no_baseline") && !reuse_native_row) {
    core::ScenarioConfig nc = make_config(*workload, core::Mode::kNative, {}, opts);
    nc.verify = false;
    native_seconds = core::run_scenario(*workload, nc).seconds;
  }

  bool all_ok = true;
  for (core::Mode mode : modes) {
    core::ScenarioConfig cfg = make_config(*workload, mode, crash, opts);
    cfg.native_seconds = native_seconds;
    core::ScenarioRunner runner(*workload, cfg);
    core::ScenarioResult res = runner.run();
    if (reuse_native_row && mode == core::Mode::kNative && native_seconds == 0.0 &&
        !opts.get_bool("no_baseline")) {
      native_seconds = res.seconds;  // This row is the baseline.
      res.time = core::normalize(res.seconds, native_seconds);
    }
    const bool ok = !res.verify_ran || res.verified;
    all_ok = all_ok && ok;
    const auto& rb = res.recomputation;
    table.add_row({name, core::mode_name(mode), core::crash_name(res.crash),
                   std::to_string(res.work_units), core::Table::fmt(res.seconds, 4),
                   native_seconds > 0 ? core::Table::fmt(res.time.normalized, 3) : "-",
                   native_seconds > 0
                       ? core::Table::fmt(res.time.overhead_percent(), 1) + "%"
                       : "-",
                   std::to_string(rb.units_lost), std::to_string(rb.partial_units),
                   res.crashes > 0 ? core::Table::fmt(rb.detect_normalized(), 2) : "-",
                   res.crashes > 0 ? core::Table::fmt(rb.resume_normalized(), 2) : "-",
                   res.verify_ran ? (res.verified ? "yes" : "FAIL") : "-"});
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts(argc, argv);
  opts.doc("workload", "workload to run (see --list)", "cg")
      .doc("mode", "durability mode, or 'all' for the paper's seven", "all")
      .doc("crash",
           "crash plan: none | step:K | random[:SEED] | repeat:N | access:N | "
           "point:NAME[:K] | fuzz:SEED",
           "none")
      .doc("matrix", "run every registered workload x every mode (skips *-sim)", "off")
      .doc("list", "list registered workloads and exit")
      .doc("format", "table output: table | csv | json", "table")
      .doc("reps", "timed repetitions per scenario (median reported)", "1")
      .doc("warmup", "one discarded repetition first", "off")
      .doc("verify", "check results against references", "on")
      .doc("no_baseline", "skip the native baseline / normalized column", "off")
      .doc("quick", "CI-sized problem defaults", "off")
      .doc("n", "problem size for cg/mm (rows / matrix dim)")
      .doc("nz", "cg: nonzeros per row", "15")
      .doc("iters", "cg: iteration count", "15")
      .doc("rank", "mm: panel rank k")
      .doc("lookups", "mc: total lookups (suffixes: K/M/G)")
      .doc("interval", "mc: lookups per durability unit")
      .doc("nuclides", "mc: nuclide count")
      .doc("gridpoints", "mc: gridpoints per nuclide")
      .doc("policy", "mc-sim: flush policy basic | selective | every", "selective")
      .doc("cache_mb", "*-sim: simulated LLC size, MB", "8")
      .doc("seed_a", "mm: seed of matrix A", "seed")
      .doc("seed_b", "mm: seed of matrix B", "seed+1")
      .doc("arena", "NVM arena bytes override (e.g. 64M, 1G)")
      .doc("slot", "checkpoint slot bytes override (e.g. 16M)")
      .doc("disk_mbps", "ckpt-disk throttle, MB/s", "150")
      .doc("seed", "problem seed");
  if (opts.maybe_print_help("adccbench")) return 0;

  const auto format = core::parse_table_format(opts.get("format", "table"));
  if (!format) {
    std::fprintf(stderr, "adccbench: bad --format (want table | csv | json)\n");
    return 2;
  }

  auto& registry = core::WorkloadRegistry::instance();
  if (opts.get_bool("list")) {
    for (const auto& name : registry.names()) {
      std::printf("%-6s %s\n", name.c_str(), registry.description(name).c_str());
    }
    return 0;
  }

  const auto crash = core::parse_crash(opts.get("crash", "none"));
  if (!crash) {
    std::fprintf(stderr,
                 "adccbench: bad --crash (want none | step:K | random[:SEED] | repeat:N | "
                 "access:N | point:NAME[:K] | fuzz:SEED)\n");
    return 2;
  }

  std::vector<core::Mode> modes;
  const std::string mode_spec = opts.get("mode", "all");
  if (mode_spec == "all") {
    modes = core::all_modes();
  } else {
    const auto m = core::parse_mode(mode_spec);
    if (!m) {
      std::fprintf(stderr, "adccbench: unknown --mode '%s'; known:", mode_spec.c_str());
      for (core::Mode k : core::all_modes()) {
        std::fprintf(stderr, " %s", core::mode_name(k).c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    modes = {*m};
  }

  std::vector<std::string> workloads;
  if (opts.get_bool("matrix")) {
    // The *-sim workloads ignore the mode axis (the simulator fixes the
    // durability scheme), so the cross-product would repeat one scenario
    // seven times; run them explicitly via --workload instead.
    for (const auto& name : registry.names()) {
      if (name.size() < 4 || name.substr(name.size() - 4) != "-sim") {
        workloads.push_back(name);
      }
    }
  } else {
    workloads.push_back(opts.get("workload", "cg"));
    if (!registry.contains(workloads.back())) {
      std::fprintf(stderr, "adccbench: unknown --workload '%s'; try --list\n",
                   workloads.back().c_str());
      return 2;
    }
  }

  bool all_ok = true;
  std::size_t scenarios = 0;
  core::Table table({"workload", "mode", "crash", "units", "seconds", "normalized", "overhead",
                     "lost", "partial", "detect/unit", "resume/unit", "verified"});
  for (const auto& name : workloads) {
    all_ok = run_workload(name, modes, *crash, opts, /*banner=*/!opts.get_bool("matrix"),
                          *format, table) &&
             all_ok;
    scenarios += modes.size();
  }
  table.print(*format);
  if (opts.get_bool("matrix") && *format == core::TableFormat::kPlain) {
    std::printf("\nMATRIX %s (%zu workloads x %zu modes = %zu scenarios, crash=%s)\n",
                all_ok ? "OK" : "FAILED", workloads.size(), modes.size(), scenarios,
                core::crash_name(*crash).c_str());
  }
  std::error_code ec;
  std::filesystem::remove_all(scratch_dir(), ec);
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "adccbench: %s\n", e.what());
  std::error_code ec;
  std::filesystem::remove_all(scratch_dir(), ec);
  return 2;
}
