// adccbench — the registry-driven scenario driver: any workload x any of the
// seven durability modes x any crash plan x any swept parameter axis, one
// binary, one process.
//
//   adccbench --list
//   adccbench --workload=cg --mode=alg-nvm/dram --crash=step:7
//   adccbench --workload=mm --mode=all --reps=3
//   adccbench --workload=cg --mode=all --crash=fuzz:17     # mid-unit fuzzing
//   adccbench --workload=cg-sim --crash=point:cg:p_updated:15
//   adccbench --matrix --quick          # full workload x mode cross-product
//   adccbench --sweep=mode=all,n=1000:4000:1000 --quick    # batched deck
//   adccbench --sweep=workload=cg-sim,cache_mb=1:64:x2 --sweep_jobs=4
//   adccbench --sweep=mode=all,threads=1:4 --format=csv --out=deck.csv
//
// Every run is a sweep deck: the scalar --workload/--mode/--crash flags are
// injected as axes when --sweep doesn't name them (--matrix is shorthand for
// workload=all), so `--workload=cg --mode=all` is the 7-cell deck it reads
// as. Decks execute in one process — optionally on --sweep_jobs worker
// threads with per-cell isolated checkpoint scratch dirs — and one crashed
// cell reports ERROR in its row instead of killing the deck.
//
// Unless --no_baseline is passed, a native run of each distinct problem shape
// is timed once and its cells are normalized against it (the paper's y-axis).
// --no_timing blanks every wall-clock column so serial and parallel decks
// emit byte-identical csv/json.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "checkpoint/codec.hpp"
#include "core/telemetry.hpp"
#include "kernels/backend.hpp"

namespace {

using namespace adcc;

// Per-process scratch, removed at exit: concurrent invocations (ctest -j runs
// both smoke matrices at once) must not share ckpt-disk slot files.
const std::filesystem::path& scratch_dir() {
  static const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("adccbench." + std::to_string(::getpid()));
  return dir;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts(argc, argv);
  opts.doc("workload", "workload to run (see --list)", "cg")
      .doc("mode", "durability mode, or 'all' for the paper's seven", "all")
      .doc("crash",
           "crash plan: none | step:K | random[:SEED] | repeat:N | access:N | "
           "point:NAME[:K] | fuzz:SEED | flip:SEED[:BITS] (silent seeded "
           "bit-flip; detection comes from the workload's checksums/invariants "
           "or is reported as an honest miss), chainable with ^ for crash-during-"
           "recovery double faults (e.g. step:2^point:ckpt_restore:1); scope "
           "prefixes shard:I: (kill shard I), shards:K:SEED: (kill a seeded "
           "random k-of-N) and coord: (kill the group coordinator) target the "
           "multi-shard engine (e.g. shard:0:step:2, coord:point:global_commit)",
           "none")
      .doc("sweep",
           "axis grid: key=v1+v2,key=lo:hi[:step|:xF],... (axes: workload, mode, "
           "crash, policy, backend, and any workload option key)")
      .doc("sweep_jobs", "worker threads executing deck cells", "1")
      .doc("matrix", "run every registered workload x every mode (skips *-sim)", "off")
      .doc("list", "list registered workloads and exit")
      .doc("format", "table output: table | csv | json", "table")
      .doc("out", "also write the table to this file (format from extension)")
      .doc("no_timing", "blank wall-clock columns (byte-stable serial vs parallel)", "off")
      .doc("trace",
           "write a Chrome trace_event JSON timeline of every cell's stage "
           "scopes (one track per cell/drain/pipeline thread, crash/recovery "
           "instants) to this file; open in chrome://tracing or Perfetto")
      .doc("reps", "timed repetitions per scenario (median reported)", "1")
      .doc("warmup", "one discarded repetition first", "off")
      .doc("verify", "check results against references", "on")
      .doc("no_baseline", "skip the native baseline / normalized column", "off")
      .doc("quick", "CI-sized problem defaults", "off")
      .doc("n", "problem size for cg/mm (rows / matrix dim)")
      .doc("nz", "cg: nonzeros per row", "15")
      .doc("iters", "cg: iteration count", "15")
      .doc("rank", "mm: panel rank k")
      .doc("backend",
           "kernel backend per cell: serial | omp (sweepable axis; omp needs a "
           "-DADCC_OPENMP=ON build, see docs/BACKENDS.md)",
           "serial")
      .doc("threads", "kernel threads per cell for --backend=omp (sweepable axis)")
      .doc("lookups", "mc: total lookups (suffixes: K/M/G)")
      .doc("interval", "mc: lookups per durability unit")
      .doc("nuclides", "mc: nuclide count")
      .doc("gridpoints", "mc: gridpoints per nuclide")
      .doc("policy", "mc-sim: flush policy basic | selective | every", "selective")
      .doc("cache_mb", "*-sim: simulated LLC size, MB", "8")
      .doc("seed_a", "mm: seed of matrix A", "seed")
      .doc("seed_b", "mm: seed of matrix B", "seed+1")
      .doc("arena", "NVM arena bytes override (e.g. 64M, 1G)")
      .doc("slot", "checkpoint slot bytes override (e.g. 16M)")
      .doc("ckpt_threads", "checkpoint write-pipeline workers (sweepable axis)", "1")
      .doc("ckpt_chunk_kb", "checkpoint chunk payload size, KB (sweepable axis)", "256")
      .doc("ckpt_async",
           "asynchronous checkpointing: save stages + drains in the background, the "
           "next unit overlaps the device window (sweepable axis)",
           "off")
      .doc("ckpt_compress",
           "per-chunk checkpoint payload codec: none | lz | lz:LEVEL (1..9, "
           "lz = lz:2; sweepable axis)",
           "none")
      .doc("ckpt_async_depth",
           "staging-arena ring depth for --ckpt_async: saves admit until N "
           "checkpoints are in flight before blocking (sweepable axis)",
           "1")
      .doc("ckpt_dirty_commit",
           "mostly-clean images rewrite only dirty chunks in place, epoch-"
           "stamping the clean ones; restore salvages torn-consistent slots "
           "(sweepable axis; rejected with --shards > 1)",
           "off")
      .doc("disk_mbps", "ckpt-disk device model bandwidth, MB/s (0 = real device)", "150")
      .doc("shards",
           "cg/mm/mc: split the run across N in-process shards with coordinated "
           "global snapshots (sweepable axis; 1 = single-rank engine)",
           "1")
      .doc("shard_stagger",
           "rotate the per-epoch shard save order so drains stagger across the "
           "device window (sweepable axis)",
           "off")
      .doc("seed", "problem seed");
  if (opts.maybe_print_help("adccbench")) return 0;

  const auto format = core::parse_table_format(opts.get("format", "table"));
  if (!format) {
    std::fprintf(stderr, "adccbench: bad --format (want table | csv | json)\n");
    return 2;
  }

  // Fail the scalar --backend up front (a sweep backend axis is validated by
  // make_axis); cells read it per-cell, but a typo should kill the deck here.
  if (opts.has("backend") &&
      core::find_kernel_backend(opts.get("backend", "serial")) == nullptr) {
    std::string built;
    for (const auto& name : core::kernel_backend_names()) {
      built += built.empty() ? name : ", " + name;
    }
    std::fprintf(stderr, "adccbench: unknown --backend '%s' (built: %s)\n",
                 opts.get("backend", "serial").c_str(), built.c_str());
    return 2;
  }

  // Same eager treatment for the scalar --ckpt_compress spelling (a sweep
  // ckpt_compress axis validates per-token in expand_string_token).
  if (opts.has("ckpt_compress")) {
    checkpoint::CodecSpec spec;
    std::string codec_err;
    if (!checkpoint::parse_codec(opts.get("ckpt_compress", "none"), &spec, &codec_err)) {
      std::fprintf(stderr, "adccbench: bad --ckpt_compress '%s': %s\n",
                   opts.get("ckpt_compress", "none").c_str(), codec_err.c_str());
      return 2;
    }
  }

  auto& registry = core::WorkloadRegistry::instance();
  if (opts.get_bool("list")) {
    for (const auto& name : registry.names()) {
      std::printf("%-6s %s\n", name.c_str(), registry.description(name).c_str());
    }
    return 0;
  }

  // Build the deck: the --sweep axes, with the scalar flags injected as axes
  // when absent so the single-scenario and --matrix spellings are the same
  // engine path (--matrix is workload=all).
  std::string error;
  core::SweepSpec spec;
  if (opts.has("sweep")) {
    auto parsed = core::parse_sweep(opts.get("sweep", ""), &error);
    if (!parsed) {
      std::fprintf(stderr, "adccbench: bad --sweep: %s\n", error.c_str());
      return 2;
    }
    spec = std::move(*parsed);
  }
  auto inject = [&](const char* key, const std::string& value, bool front) -> bool {
    if (spec.find(key) != nullptr) return true;
    auto axis = core::make_axis(key, value, &error);
    if (!axis) {
      std::fprintf(stderr, "adccbench: bad --%s: %s\n", key, error.c_str());
      return false;
    }
    spec.axes.insert(front ? spec.axes.begin() : spec.axes.end(), std::move(*axis));
    return true;
  };
  // Workload first: the mode default depends on what the deck sweeps.
  if (!inject("workload", opts.get_bool("matrix") ? "all" : opts.get("workload", "cg"),
              /*front=*/true)) {
    return 2;
  }
  // The *-sim workloads ignore the mode axis, so a deck of only sims would run
  // every scenario seven times under the default mode=all injection; an
  // explicit --mode (or a mode axis in --sweep) still wins.
  const core::SweepAxis* workloads = spec.find("workload");
  const bool all_sim =
      std::all_of(workloads->values.begin(), workloads->values.end(),
                  [](const std::string& name) { return name.ends_with("-sim"); });
  const std::string default_mode = all_sim && !opts.has("mode") ? "native" : "all";
  if (spec.find("mode") == nullptr) {
    auto axis = core::make_axis("mode", opts.get("mode", default_mode), &error);
    if (!axis) {
      std::fprintf(stderr, "adccbench: bad --mode: %s\n", error.c_str());
      return 2;
    }
    spec.axes.insert(spec.axes.begin() + 1, std::move(*axis));  // After workload.
  }
  if (!inject("crash", opts.get("crash", "none"), /*front=*/false)) return 2;

  core::SweepConfig cfg;
  cfg.base = opts;
  cfg.jobs = std::max(1, static_cast<int>(opts.get_int("sweep_jobs", 1)));
  // Baselines only feed the wall-clock columns, which --no_timing blanks.
  cfg.baseline = !opts.get_bool("no_baseline") && !opts.get_bool("no_timing");
  cfg.scratch_root = scratch_dir();
  // Stage telemetry rides every timed deck (its columns are blanked with the
  // other wall-clock columns under --no_timing); --trace additionally records
  // the Chrome timeline, and keeps telemetry on even without timing columns.
  std::shared_ptr<core::TraceSink> trace;
  if (opts.has("trace")) trace = std::make_shared<core::TraceSink>();
  cfg.telemetry = !opts.get_bool("no_timing") || trace != nullptr;
  cfg.trace = trace;

  if (*format == core::TableFormat::kPlain) {
    core::print_banner("adccbench", "sweep " + spec.canonical() + " (" +
                                        std::to_string(spec.cells()) + " cells)");
  }

  const core::SweepResult deck = core::run_sweep(spec, cfg);
  const bool timing = !opts.get_bool("no_timing");
  const core::Table table = deck.table(timing);
  table.print(*format);

  if (opts.has("out")) {
    const std::filesystem::path path = opts.get("out", "");
    const auto ext = path.extension().string();
    const core::TableFormat file_format = ext == ".csv"    ? core::TableFormat::kCsv
                                          : ext == ".json" ? core::TableFormat::kJson
                                                           : *format;
    std::ofstream out(path);
    ADCC_CHECK(out.good(), "cannot open --out file");
    out << table.render(file_format);
  }

  if (trace != nullptr) {
    const std::filesystem::path path = opts.get("trace", "");
    std::ofstream out(path);
    ADCC_CHECK(out.good(), "cannot open --trace file");
    trace->write_chrome_trace(out);
  }

  if (*format == core::TableFormat::kPlain) {
    std::printf("\nSWEEP %s (%zu cells: %zu ok, %zu verify-failed, %zu errors)\n",
                deck.all_ok() ? "OK" : "FAILED", deck.cells.size(),
                deck.count(core::SweepCellResult::Status::kOk),
                deck.count(core::SweepCellResult::Status::kVerifyFailed),
                deck.count(core::SweepCellResult::Status::kError));
  }
  std::error_code ec;
  std::filesystem::remove_all(scratch_dir(), ec);
  return deck.all_ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "adccbench: %s\n", e.what());
  std::error_code ec;
  std::filesystem::remove_all(scratch_dir(), ec);
  return 2;
}
