// Fig. 10 reproduction — XSBench interaction-type tallies: no-crash vs the
// "basic idea" (flush only the loop index, trust MC's statistics).
//
// Paper setup: H-M reactor model, crash at 10 % of lookups, both runs on the
// same sampled inputs. Expected shape: the no-crash run tallies every type
// ≈ equally; the basic-idea restart loses the cache-resident counter updates,
// so its tallies diverge visibly (the paper saw up to 8 % gaps).
//
// Ported onto ScenarioRunner: the mc-sim workload (one lookup per work unit)
// runs XsCrashConsistent under the unified driver; the crash is the plan
// `point:xs:lookup_end:K` with K = crash_pct% of the lookups.
//
// Flags: --lookups=200000 --nuclides=68 --gridpoints=2000 --cache_mb=8
//        --crash_pct=10 --quick (scaled down)
#include <cstdio>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "mc/mc_sim_workload.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("lookups", "total lookups", "200000 (quick: 50000)")
      .doc("nuclides", "nuclide count", "68 (quick: 24)")
      .doc("gridpoints", "gridpoints per nuclide", "2000 (quick: 500)")
      .doc("crash_pct", "crash point, % of lookups", "10")
      .doc("cache_mb", "simulated LLC size, MB", "8")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig10_xs_basic")) return 0;
  const bool quick = opts.get_bool("quick");

  mc::McSimWorkloadConfig wcfg;
  wcfg.data.n_nuclides = opts.get_size("nuclides", quick ? 24 : 68);
  wcfg.data.gridpoints_per_nuclide = opts.get_size("gridpoints", quick ? 500 : 2000);
  wcfg.lookups = opts.get_size("lookups", quick ? 50'000 : 200'000);
  wcfg.policy = mc::XsFlushPolicy::kBasicIdea;
  wcfg.cache_bytes = opts.get_size("cache_mb", 8) << 20;
  wcfg.rng_seed = 99;
  const double crash_pct = opts.get_double("crash_pct", 10.0);
  const std::uint64_t lookups = wcfg.lookups;

  mc::McSimWorkload workload(wcfg);
  core::print_banner(
      "Fig. 10", "XSBench tallies: no crash vs basic-idea restart (grids " +
                     std::to_string(wcfg.data.footprint_bytes() >> 20) + " MB, crash at " +
                     core::Table::fmt(crash_pct, 0) + "% of " + std::to_string(lookups) +
                     " lookups)");

  core::ScenarioConfig nocrash;
  nocrash.mode = core::Mode::kAlgNvm;  // The simulated scheme fixes durability.
  workload.tune_env(nocrash.mode, nocrash.env);
  const core::ScenarioResult clean = core::run_scenario(workload, nocrash);
  ADCC_CHECK(clean.crashes == 0, "unexpected crash");
  const mc::Tally ref = workload.tally();

  core::ScenarioConfig crashed = nocrash;
  crashed.crash.kind = core::CrashScenario::Kind::kAtPoint;
  crashed.crash.point = mc::XsCrashConsistent::kPointLookupEnd;
  crashed.crash.occurrence =
      static_cast<std::uint64_t>(static_cast<double>(lookups) * crash_pct / 100.0);
  const core::ScenarioResult res = core::run_scenario(workload, crashed);
  ADCC_CHECK(res.crashes == 1, "crash did not fire");
  const mc::Tally bad = workload.tally();

  core::Table table({"interaction type", "no crash", "crash+basic-idea", "gap (pp)"});
  const auto pr = ref.percentages(lookups);
  const auto pb = bad.percentages(lookups);
  for (int c = 0; c < mc::kChannels; ++c) {
    table.add_row({std::to_string(c + 1), core::Table::fmt(pr[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pb[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pr[static_cast<std::size_t>(c)] - pb[static_cast<std::size_t>(c)], 2)});
  }
  table.print();
  std::printf("\ntallies counted: no-crash %llu / %llu lookups, basic idea %llu (%llu lost)\n",
              static_cast<unsigned long long>(ref.total()),
              static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(bad.total()),
              static_cast<unsigned long long>(ref.total() - bad.total()));
  std::printf("max per-type gap: %.2f pp (paper observed visible divergence, up to ~8 pp)\n",
              mc::max_percentage_gap(ref, bad, lookups));
  return 0;
}
