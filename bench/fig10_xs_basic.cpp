// Fig. 10 reproduction — XSBench interaction-type tallies: no-crash vs the
// "basic idea" (flush only the loop index, trust MC's statistics).
//
// Paper setup: H-M reactor model, crash at 10 % of lookups, both runs on the
// same sampled inputs. Expected shape: the no-crash run tallies every type
// ≈ equally; the basic-idea restart loses the cache-resident counter updates,
// so its tallies diverge visibly (the paper saw up to 8 % gaps).
//
// Flags: --lookups=200000 --nuclides=68 --gridpoints=2000 --cache_mb=8
//        --crash_pct=10 --quick (scaled down)
#include <cstdio>

#include "common/check.hpp"
#include "common/options.hpp"
#include "core/report.hpp"
#include "mc/xs_cc.hpp"

int main(int argc, char** argv) {
  using namespace adcc;
  Options opts(argc, argv);
  opts.doc("lookups", "total lookups", "200000 (quick: 50000)")
      .doc("nuclides", "nuclide count", "68 (quick: 24)")
      .doc("gridpoints", "gridpoints per nuclide", "2000 (quick: 500)")
      .doc("crash_pct", "crash point, % of lookups", "10")
      .doc("cache_mb", "simulated LLC size, MB", "8")
      .doc("quick", "CI-sized run");
  if (opts.maybe_print_help("fig10_xs_basic")) return 0;
  const bool quick = opts.get_bool("quick");
  mc::XsConfig dc;
  dc.n_nuclides = opts.get_size("nuclides", quick ? 24 : 68);
  dc.gridpoints_per_nuclide = opts.get_size("gridpoints", quick ? 500 : 2000);
  const std::uint64_t lookups = opts.get_size("lookups", quick ? 50'000 : 200'000);
  const double crash_pct = opts.get_double("crash_pct", 10.0);
  const std::size_t cache_mb = opts.get_size("cache_mb", 8);

  const mc::XsDataHost data(dc);
  core::print_banner(
      "Fig. 10", "XSBench tallies: no crash vs basic-idea restart (grids " +
                     std::to_string(dc.footprint_bytes() >> 20) + " MB, crash at " +
                     core::Table::fmt(crash_pct, 0) + "% of " + std::to_string(lookups) +
                     " lookups)");

  mc::XsCcConfig cfg;
  cfg.total_lookups = lookups;
  cfg.policy = mc::XsFlushPolicy::kBasicIdea;
  cfg.cache.size_bytes = cache_mb << 20;
  cfg.cache.ways = 16;
  cfg.rng_seed = 99;

  mc::XsCrashConsistent nocrash(data, cfg);
  ADCC_CHECK(!nocrash.run(), "unexpected crash");
  const mc::Tally ref = nocrash.tally();

  mc::XsCrashConsistent crashed(data, cfg);
  crashed.sim().scheduler().arm_at_point(
      mc::XsCrashConsistent::kPointLookupEnd,
      static_cast<std::uint64_t>(static_cast<double>(lookups) * crash_pct / 100.0));
  ADCC_CHECK(crashed.run(), "crash did not fire");
  crashed.recover_and_resume();
  const mc::Tally bad = crashed.tally();

  core::Table table({"interaction type", "no crash", "crash+basic-idea", "gap (pp)"});
  const auto pr = ref.percentages(lookups);
  const auto pb = bad.percentages(lookups);
  for (int c = 0; c < mc::kChannels; ++c) {
    table.add_row({std::to_string(c + 1), core::Table::fmt(pr[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pb[static_cast<std::size_t>(c)], 2) + "%",
                   core::Table::fmt(pr[static_cast<std::size_t>(c)] - pb[static_cast<std::size_t>(c)], 2)});
  }
  table.print();
  std::printf("\ntallies counted: no-crash %llu / %llu lookups, basic idea %llu (%llu lost)\n",
              static_cast<unsigned long long>(ref.total()),
              static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(bad.total()),
              static_cast<unsigned long long>(ref.total() - bad.total()));
  std::printf("max per-type gap: %.2f pp (paper observed visible divergence, up to ~8 pp)\n",
              mc::max_percentage_gap(ref, bad, lookups));
  return 0;
}
