// Microbenchmarks (google-benchmark) for the crash emulator itself: access
// cost of the cache model, range notifications, clflush, and a full CG-like
// streaming mix. The emulator's throughput bounds how large the Fig. 3/7/10
// simulations can be.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "memsim/tracked.hpp"

namespace {

using namespace adcc;
using namespace adcc::memsim;

CacheConfig llc_8mb() {
  CacheConfig c;
  c.size_bytes = 8u << 20;
  c.ways = 16;
  return c;
}

void BM_CacheAccessHit(benchmark::State& state) {
  SetAssocCache cache(llc_8mb());
  cache.access(0x10000, true);
  for (auto _ : state) benchmark::DoNotOptimize(cache.access(0x10000, false).hit);
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStreamingMiss(benchmark::State& state) {
  SetAssocCache cache(llc_8mb());
  std::uintptr_t line = 0x100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, true).evicted);
    line += kCacheLine;
  }
}
BENCHMARK(BM_CacheAccessStreamingMiss);

void BM_CacheAccessRandom(benchmark::State& state) {
  SetAssocCache cache(llc_8mb());
  SplitMix64 rng(1);
  for (auto _ : state) {
    const std::uintptr_t line = 0x100000 + (rng.next_u64() % (1u << 24)) * kCacheLine;
    benchmark::DoNotOptimize(cache.access(line, false).hit);
  }
}
BENCHMARK(BM_CacheAccessRandom);

void BM_SimTouchRange(benchmark::State& state) {
  const auto elems = static_cast<std::size_t>(state.range(0));
  MemorySimulator sim(llc_8mb());
  TrackedArray<double> arr(sim, "a", elems);
  for (auto _ : state) arr.touch_write(0, elems);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elems * sizeof(double)));
}
BENCHMARK(BM_SimTouchRange)->Range(64, 1 << 18);

void BM_SimClflushRange(benchmark::State& state) {
  const auto elems = static_cast<std::size_t>(state.range(0));
  MemorySimulator sim(llc_8mb());
  TrackedArray<double> arr(sim, "a", elems);
  for (auto _ : state) {
    arr.touch_write(0, elems);
    arr.flush(0, elems);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elems * sizeof(double)));
}
BENCHMARK(BM_SimClflushRange)->Range(64, 1 << 16);

void BM_SimCgLikeIterationMix(benchmark::State& state) {
  // A CG-iteration-shaped access mix: stream a big RO region, read one row,
  // write another, flush one line — the emulator's hot path in Fig. 3.
  constexpr std::size_t kN = 1u << 14;
  MemorySimulator sim(llc_8mb());
  TrackedArray<double> a(sim, "A", 8 * kN, /*read_only=*/true);
  TrackedArray<double> p(sim, "p", kN);
  TrackedArray<double> q(sim, "q", kN);
  TrackedScalar<std::int64_t> iter(sim, "i", 0);
  std::int64_t i = 0;
  for (auto _ : state) {
    iter.set_and_flush(++i);
    a.touch_read(0, 8 * kN);
    p.touch_read(0, kN);
    q.touch_write(0, kN);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 10 * kN * 8);
}
BENCHMARK(BM_SimCgLikeIterationMix);

void BM_SimDurableRead(benchmark::State& state) {
  constexpr std::size_t kN = 1u << 14;
  MemorySimulator sim(llc_8mb());
  TrackedArray<double> p(sim, "p", kN);
  std::vector<double> out(kN);
  for (auto _ : state) {
    p.durable_snapshot(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kN * 8);
}
BENCHMARK(BM_SimDurableRead);

}  // namespace

BENCHMARK_MAIN();
